// Tests for the workload-profiling fast path: sparse-frontier SIMT costing
// vs. the dense oracle, parallel WorkloadSet construction vs. the serial
// reference, and the persistent profile cache (round-trip, corruption and
// staleness fallback).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "graph/generator.hpp"
#include "graph/simt.hpp"
#include "obs/counters.hpp"
#include "sys/profile_cache.hpp"
#include "sys/workloads.hpp"

namespace coolpim {
namespace {

// --- Sparse vs. dense SIMT costing ----------------------------------------

void expect_cost_equal(const graph::SimtCost& a, const graph::SimtCost& b) {
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.active_warps, b.active_warps);
  EXPECT_EQ(a.divergence_accum, b.divergence_accum);  // bit-identical doubles
}

/// Dense work vector + the sorted warp-id list of its nonzero lanes.
struct Frontier {
  std::vector<std::uint32_t> work;
  std::vector<std::uint32_t> warp_ids;
  std::vector<std::uint32_t> active_values;  // nonzero entries, ascending lane
};

Frontier make_frontier(std::size_t lanes, const std::vector<std::uint32_t>& active_lanes,
                       std::uint32_t base_work) {
  Frontier f;
  f.work.assign(lanes, 0);
  for (const auto lane : active_lanes) {
    f.work[lane] = base_work + lane % 7;
    f.active_values.push_back(f.work[lane]);
    const std::uint32_t w = lane / graph::kWarpSize;
    if (f.warp_ids.empty() || f.warp_ids.back() != w) f.warp_ids.push_back(w);
  }
  return f;
}

class SparseCostEquivalence : public ::testing::Test {
 protected:
  static constexpr std::size_t kLanes = 100;  // deliberately not a warp multiple
  static constexpr double kInstr = 8.0;
  static constexpr double kBase = 16.0;

  static void check(const Frontier& f) {
    expect_cost_equal(
        graph::thread_centric_cost(f.work, kInstr, kBase),
        graph::thread_centric_cost_sparse(f.work, f.warp_ids, f.work.size(), kInstr, kBase));
    expect_cost_equal(
        graph::warp_centric_cost(f.work, kInstr, kBase),
        graph::warp_centric_cost_sparse(f.active_values, f.work.size(), kInstr, kBase));
  }
};

TEST_F(SparseCostEquivalence, EmptyFrontier) { check(make_frontier(kLanes, {}, 5)); }

TEST_F(SparseCostEquivalence, SingleVertex) {
  check(make_frontier(kLanes, {0}, 12));
  check(make_frontier(kLanes, {63}, 12));   // last lane of a warp
  check(make_frontier(kLanes, {99}, 12));   // inside the tail warp
}

TEST_F(SparseCostEquivalence, FullGraph) {
  std::vector<std::uint32_t> all(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) all[i] = static_cast<std::uint32_t>(i);
  check(make_frontier(kLanes, all, 3));
}

TEST_F(SparseCostEquivalence, ScatteredFrontier) {
  check(make_frontier(kLanes, {1, 2, 30, 31, 32, 64, 97}, 9));
  // Active lanes whose work is zero still count their warp as visited in the
  // sparse path; the dense oracle must agree (max_w == 0 -> inactive warp).
  Frontier f = make_frontier(kLanes, {5, 40}, 0);
  // base_work 0 -> work[5] = 5 % 7 = 5, work[40] = 40 % 7 = 5; force one zero.
  f.work[40] = 0;
  f.active_values = {f.work[5], 0};
  check(f);
}

TEST_F(SparseCostEquivalence, WarpCentricOrderIndependent) {
  // Per-item warp-centric costs are order-independent sums, so the sparse
  // variant may receive the active values in any order.
  const Frontier f = make_frontier(kLanes, {3, 33, 66, 98}, 20);
  auto shuffled = f.active_values;
  std::swap(shuffled.front(), shuffled.back());
  expect_cost_equal(
      graph::warp_centric_cost(f.work, kInstr, kBase),
      graph::warp_centric_cost_sparse(shuffled, f.work.size(), kInstr, kBase));
}

// --- Parallel WorkloadSet vs. serial reference ----------------------------

void expect_profiles_identical(const std::vector<graph::WorkloadProfile>& a,
                               const std::vector<graph::WorkloadProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].name);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].driver, b[i].driver);
    EXPECT_EQ(a[i].parallelism, b[i].parallelism);
    EXPECT_EQ(a[i].atomic_kind, b[i].atomic_kind);
    EXPECT_EQ(a[i].graph_vertices, b[i].graph_vertices);
    EXPECT_EQ(a[i].graph_edges, b[i].graph_edges);
    EXPECT_EQ(a[i].result_checksum, b[i].result_checksum);
    ASSERT_EQ(a[i].iterations.size(), b[i].iterations.size());
    for (std::size_t j = 0; j < a[i].iterations.size(); ++j) {
      const auto& p = a[i].iterations[j];
      const auto& q = b[i].iterations[j];
      EXPECT_EQ(p.scanned_vertices, q.scanned_vertices);
      EXPECT_EQ(p.active_vertices, q.active_vertices);
      EXPECT_EQ(p.edges_processed, q.edges_processed);
      EXPECT_EQ(p.work_threads, q.work_threads);
      EXPECT_EQ(p.struct_scan_bytes, q.struct_scan_bytes);
      EXPECT_EQ(p.property_reads, q.property_reads);
      EXPECT_EQ(p.property_writes, q.property_writes);
      EXPECT_EQ(p.atomic_ops, q.atomic_ops);
      EXPECT_EQ(p.compute_warp_instructions, q.compute_warp_instructions);
      EXPECT_EQ(p.divergent_warp_ratio, q.divergent_warp_ratio);  // bit-identical
    }
  }
}

TEST(WorkloadSetParallelTest, BitIdenticalToSerialReferenceAtAnyJobs) {
  sys::WorkloadSet::BuildOptions serial_opt;
  serial_opt.serial_reference = true;
  const sys::WorkloadSet oracle{12, 7, true, serial_opt};

  for (const unsigned jobs : {1u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    sys::WorkloadSet::BuildOptions opt;
    opt.jobs = jobs;
    opt.use_cache = false;
    const sys::WorkloadSet parallel{12, 7, true, opt};
    expect_profiles_identical(oracle.all(), parallel.all());
    EXPECT_EQ(parallel.build_stats().profiles_computed, oracle.all().size());
    EXPECT_EQ(parallel.build_stats().cache_hits, 0u);
  }
}

TEST(WorkloadSetParallelTest, ProfileLookupByName) {
  const sys::WorkloadSet set{11, 2};
  for (const auto& name : sys::workload_names()) {
    EXPECT_EQ(set.profile(name).name, name);
  }
  EXPECT_THROW((void)set.profile("nope"), ConfigError);
}

TEST(WorkloadSetParallelTest, SourceComesFromDegreeTable) {
  const auto g = graph::make_ldbc_like(11, 2);
  const auto hub = g.max_degree_vertex();
  // Oracle: the original linear scan semantics (lowest id wins ties).
  graph::VertexId expect = 0;
  std::uint32_t best = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > best) {
      best = g.out_degree(v);
      expect = v;
    }
  }
  EXPECT_EQ(hub, expect);
  EXPECT_EQ(g.out_degree(hub), g.max_degree());
}

// --- Persistent profile cache ---------------------------------------------

class ProfileCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("coolpim-cache-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  sys::WorkloadSet build(obs::CounterRegistry* counters = nullptr) const {
    sys::WorkloadSet::BuildOptions opt;
    opt.cache_dir = dir_;
    opt.counters = counters;
    return sys::WorkloadSet{11, 3, false, opt};
  }

  std::string dir_;
};

TEST_F(ProfileCacheTest, RoundTripServesIdenticalProfiles) {
  obs::CounterRegistry cold_counters;
  const sys::WorkloadSet cold = build(&cold_counters);
  EXPECT_EQ(cold.build_stats().cache_hits, 0u);
  EXPECT_EQ(cold.build_stats().cache_misses, 1u);
  EXPECT_EQ(cold.build_stats().profiles_computed, cold.all().size());
  EXPECT_TRUE(cold.build_stats().cache_stored);
  EXPECT_EQ(cold_counters.counter_value("graph/profiles_computed"), cold.all().size());

  obs::CounterRegistry warm_counters;
  const sys::WorkloadSet warm = build(&warm_counters);
  EXPECT_EQ(warm.build_stats().cache_hits, warm.all().size());
  EXPECT_EQ(warm.build_stats().cache_misses, 0u);
  EXPECT_EQ(warm.build_stats().profiles_computed, 0u);
  EXPECT_EQ(warm_counters.counter_value("graph/profile_cache_hits"), warm.all().size());
  EXPECT_EQ(warm_counters.counter_value("graph/profiles_computed"), 0u);
  expect_profiles_identical(cold.all(), warm.all());
}

TEST_F(ProfileCacheTest, CorruptedEntryFallsBackToRecompute) {
  const sys::WorkloadSet cold = build();
  const auto path = sys::profile_cache_file(
      dir_, sys::profile_cache_key(11, 3, false));
  ASSERT_TRUE(std::filesystem::exists(path));

  // Flip one byte in the middle of the payload; the hash trailer must
  // reject the entry and the build must recompute (and rewrite it).
  {
    const auto mid = static_cast<std::streamoff>(std::filesystem::file_size(path) / 2);
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    f.seekg(mid);
    const int byte = f.get();
    ASSERT_GE(byte, 0);
    f.seekp(mid);
    f.put(static_cast<char>(byte ^ 0xff));
  }
  const sys::WorkloadSet rebuilt = build();
  EXPECT_EQ(rebuilt.build_stats().cache_hits, 0u);
  EXPECT_EQ(rebuilt.build_stats().cache_misses, 1u);
  EXPECT_EQ(rebuilt.build_stats().profiles_computed, rebuilt.all().size());
  EXPECT_TRUE(rebuilt.build_stats().cache_stored);
  expect_profiles_identical(cold.all(), rebuilt.all());

  // The rewritten entry is usable again.
  const sys::WorkloadSet warm = build();
  EXPECT_EQ(warm.build_stats().cache_hits, warm.all().size());
}

TEST_F(ProfileCacheTest, TruncatedEntryFallsBackToRecompute) {
  const sys::WorkloadSet cold = build();
  const auto path = sys::profile_cache_file(
      dir_, sys::profile_cache_key(11, 3, false));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  const sys::WorkloadSet rebuilt = build();
  EXPECT_EQ(rebuilt.build_stats().cache_hits, 0u);
  EXPECT_EQ(rebuilt.build_stats().profiles_computed, rebuilt.all().size());
  expect_profiles_identical(cold.all(), rebuilt.all());
}

TEST_F(ProfileCacheTest, StaleEntryWithWrongGraphShapeIsRejected) {
  // Craft an internally-consistent entry (valid hash, version and key) whose
  // profiles describe a different graph: the semantic cross-check against
  // the freshly built graph must reject it.
  const sys::WorkloadSet cold = build();
  auto stale = cold.all();
  for (auto& p : stale) p.graph_vertices += 1;
  const auto key = sys::profile_cache_key(11, 3, false);
  ASSERT_TRUE(sys::save_profiles(dir_, key, stale));

  const sys::WorkloadSet rebuilt = build();
  EXPECT_EQ(rebuilt.build_stats().cache_hits, 0u);
  EXPECT_EQ(rebuilt.build_stats().cache_misses, 1u);
  EXPECT_EQ(rebuilt.build_stats().profiles_computed, rebuilt.all().size());
  expect_profiles_identical(cold.all(), rebuilt.all());
}

TEST_F(ProfileCacheTest, KeySeparatesIdentities) {
  const auto k1 = sys::profile_cache_key(11, 3, false);
  EXPECT_NE(k1, sys::profile_cache_key(12, 3, false));
  EXPECT_NE(k1, sys::profile_cache_key(11, 4, false));
  EXPECT_NE(k1, sys::profile_cache_key(11, 3, true));
}

TEST_F(ProfileCacheTest, SerialReferenceNeverTouchesCache) {
  (void)build();  // populate
  sys::WorkloadSet::BuildOptions opt;
  opt.cache_dir = dir_;
  opt.serial_reference = true;
  const sys::WorkloadSet serial{11, 3, false, opt};
  EXPECT_EQ(serial.build_stats().cache_hits, 0u);
  EXPECT_EQ(serial.build_stats().cache_misses, 0u);
  EXPECT_EQ(serial.build_stats().profiles_computed, serial.all().size());
}

}  // namespace
}  // namespace coolpim
