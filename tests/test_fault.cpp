// Tests for the deterministic fault-injection layer: FaultPlan fate rolls,
// retry/backoff behaviour, watchdog arm/engage/disengage, experiment-key
// gating (fault-free configs keep their pre-fault keys), and bit-identical
// fault patterns across runner jobs counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/fault_config.hpp"
#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "hmc/link_model.hpp"
#include "runner/experiment.hpp"
#include "sys/system.hpp"

namespace coolpim {
namespace {

constexpr std::uint64_t kSeed = 0x1234'5678'9abc'def0ULL;

// ---- FaultPlan --------------------------------------------------------------

TEST(FaultConfigTest, DefaultIsDisabled) {
  fault::FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.validate();  // defaults must validate
  cfg.force_enable = true;
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultConfigTest, AnyNonzeroRateEnables) {
  fault::FaultConfig cfg;
  cfg.warning_drop_rate = 0.1;
  EXPECT_TRUE(cfg.enabled());
  cfg = {};
  cfg.sensor_noise_sigma_c = 0.5;
  EXPECT_TRUE(cfg.enabled());
  cfg = {};
  cfg.warning_delay_max = Time::us(10);
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultConfigTest, ValidateRejectsOutOfRange) {
  fault::FaultConfig cfg;
  cfg.warning_drop_rate = 1.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.sensor_noise_sigma_c = -0.1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.watchdog.window = Time::zero();
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.watchdog.smoothing = Time::ps(-1);
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(FaultPlanTest, ZeroRatesPassWarningsThroughUndisturbed) {
  fault::FaultConfig cfg;
  cfg.force_enable = true;  // zero rates, layer instantiated
  fault::FaultPlan plan{cfg, kSeed};
  const Time t = Time::us(100);
  plan.begin_epoch(t);
  EXPECT_DOUBLE_EQ(plan.condition_reading(t, Celsius{84.0}).value(), 84.0);
  plan.offer_warning(t);
  plan.maybe_spurious(t);
  const auto due = plan.collect_due(t);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].at, t);
  EXPECT_EQ(due[0].raised_at, t);  // undisturbed channel: raise == delivery
  EXPECT_FALSE(due[0].spurious);
  EXPECT_EQ(plan.stats().warnings_offered, 1u);
  EXPECT_EQ(plan.stats().warnings_delivered, 1u);
  EXPECT_EQ(plan.stats().warnings_dropped, 0u);
}

TEST(FaultPlanTest, FullDropLosesEveryWarning) {
  fault::FaultConfig cfg;
  cfg.warning_drop_rate = 1.0;
  fault::FaultPlan plan{cfg, kSeed};
  for (int i = 1; i <= 50; ++i) {
    const Time t = Time::us(10.0 * i);
    plan.begin_epoch(t);
    plan.offer_warning(t);
    EXPECT_TRUE(plan.collect_due(t).empty());
  }
  EXPECT_EQ(plan.stats().warnings_offered, 50u);
  EXPECT_EQ(plan.stats().warnings_dropped, 50u);
  EXPECT_EQ(plan.stats().warnings_delivered, 0u);
}

TEST(FaultPlanTest, AlwaysCorruptExhaustsRetriesAndGivesUp) {
  fault::FaultConfig cfg;
  cfg.errstat_corrupt_rate = 1.0;  // every transmission attempt corrupted
  cfg.retry.max_retries = 3;
  fault::FaultPlan plan{cfg, kSeed};
  const Time t = Time::us(10);
  plan.begin_epoch(t);
  plan.offer_warning(t);
  EXPECT_TRUE(plan.collect_due(t + Time::ms(10)).empty());
  EXPECT_EQ(plan.stats().retries, 3u);  // the replay budget, then give up
  EXPECT_EQ(plan.stats().retry_giveups, 1u);
  EXPECT_EQ(plan.stats().warnings_delivered, 0u);
}

TEST(FaultPlanTest, BoundedDelayPreservesRaiseTime) {
  fault::FaultConfig cfg;
  cfg.warning_delay_max = Time::us(50);
  fault::FaultPlan plan{cfg, kSeed};
  const Time raise = Time::us(100);
  plan.begin_epoch(raise);
  plan.offer_warning(raise);
  const auto due = plan.collect_due(raise + cfg.warning_delay_max);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].raised_at, raise);
  EXPECT_GE(due[0].at, raise);
  EXPECT_LE(due[0].at, raise + cfg.warning_delay_max);
}

TEST(FaultPlanTest, OutageLosesWarningsForItsDuration) {
  fault::FaultConfig cfg;
  cfg.link_outage_rate = 1.0;  // outage starts on the first epoch
  cfg.link_outage_duration = Time::us(100);
  fault::FaultPlan plan{cfg, kSeed};
  plan.begin_epoch(Time::us(10));
  EXPECT_TRUE(plan.in_outage());
  plan.offer_warning(Time::us(10));
  EXPECT_TRUE(plan.collect_due(Time::us(10)).empty());
  EXPECT_EQ(plan.stats().warnings_lost_outage, 1u);
}

TEST(FaultPlanTest, SameSeedSameFatesDifferentSeedDiverges) {
  fault::FaultConfig cfg;
  cfg.warning_drop_rate = 0.5;
  cfg.sensor_noise_sigma_c = 0.3;
  auto fates = [&](std::uint64_t seed) {
    fault::FaultPlan plan{cfg, seed};
    std::vector<double> readings;
    std::uint64_t delivered = 0;
    for (int i = 1; i <= 200; ++i) {
      const Time t = Time::us(10.0 * i);
      plan.begin_epoch(t);
      readings.push_back(plan.condition_reading(t, Celsius{85.0}).value());
      plan.offer_warning(t);
      delivered += plan.collect_due(t).size();
    }
    readings.push_back(static_cast<double>(delivered));
    return readings;
  };
  EXPECT_EQ(fates(kSeed), fates(kSeed));  // bit-identical replay
  EXPECT_NE(fates(kSeed), fates(kSeed + 1));
}

TEST(LinkRetryPolicyTest, CappedExponentialBackoff) {
  hmc::LinkRetryPolicy p;
  p.backoff_base = Time::us(1.0);
  p.backoff_factor = 2.0;
  p.backoff_cap = Time::us(16.0);
  EXPECT_EQ(p.retry_delay(1), Time::us(1));
  EXPECT_EQ(p.retry_delay(2), Time::us(2));
  EXPECT_EQ(p.retry_delay(4), Time::us(8));
  EXPECT_EQ(p.retry_delay(5), Time::us(16));
  EXPECT_EQ(p.retry_delay(9), Time::us(16));  // capped
  EXPECT_EQ(p.total_delay(3), Time::us(1 + 2 + 4));
}

// ---- Watchdog ---------------------------------------------------------------

fault::WatchdogConfig wd_config() {
  fault::WatchdogConfig cfg;
  cfg.window = Time::ms(3.0);
  cfg.min_interval = Time::ms(1.5);
  cfg.arm_margin_c = 2.5;
  cfg.smoothing = Time::zero();  // raw readings: tests drive exact levels
  return cfg;
}

TEST(WatchdogTest, EngagesAfterSilenceWindowWhileHot) {
  fault::Watchdog wd{wd_config(), Celsius{84.5}};
  // Hot and not falling, no deliveries: engages once the window elapses.
  EXPECT_FALSE(wd.tick(Time::ms(1), Celsius{84.0}));  // arms here
  EXPECT_FALSE(wd.tick(Time::ms(3.9), Celsius{84.0}));
  EXPECT_TRUE(wd.tick(Time::ms(4.0), Celsius{84.0}));
  EXPECT_TRUE(wd.engaged());
  // Engaged: repeats every min_interval, not every tick.
  EXPECT_FALSE(wd.tick(Time::ms(5.0), Celsius{84.0}));
  EXPECT_TRUE(wd.tick(Time::ms(5.5), Celsius{84.0}));
  EXPECT_EQ(wd.engagements(), 2u);
}

TEST(WatchdogTest, DeliveryResetsSilenceAndDisengages) {
  fault::Watchdog wd{wd_config(), Celsius{84.5}};
  EXPECT_FALSE(wd.tick(Time::ms(1), Celsius{84.0}));
  ASSERT_TRUE(wd.tick(Time::ms(4), Celsius{84.0}));
  wd.on_delivery(Time::ms(4.2));  // feedback restored
  EXPECT_FALSE(wd.engaged());
  EXPECT_EQ(wd.disengagements(), 1u);
  // Silence clock restarts at the delivery, full window again.
  EXPECT_FALSE(wd.tick(Time::ms(7.1), Celsius{84.0}));
  EXPECT_TRUE(wd.tick(Time::ms(7.3), Celsius{84.0}));
}

TEST(WatchdogTest, CoolReadingDisarmsAndDisengages) {
  fault::Watchdog wd{wd_config(), Celsius{84.5}};
  EXPECT_FALSE(wd.tick(Time::ms(1), Celsius{84.0}));
  ASSERT_TRUE(wd.tick(Time::ms(4), Celsius{84.0}));
  // Below threshold - margin: the stack cooled on its own.
  EXPECT_FALSE(wd.tick(Time::ms(5), Celsius{80.0}));
  EXPECT_FALSE(wd.engaged());
  EXPECT_EQ(wd.disengagements(), 1u);
  // Re-arming starts a fresh window (a cold start is not silence).
  EXPECT_FALSE(wd.tick(Time::ms(6), Celsius{84.0}));
  EXPECT_FALSE(wd.tick(Time::ms(8.9), Celsius{84.0}));
  EXPECT_TRUE(wd.tick(Time::ms(9), Celsius{84.0}));
}

TEST(WatchdogTest, FallingBelowThresholdDoesNotEngage) {
  fault::Watchdog wd{wd_config(), Celsius{84.5}};
  EXPECT_FALSE(wd.tick(Time::ms(1), Celsius{84.0}));
  // Falling but still above the arm level: cooling is under way, hold off.
  EXPECT_FALSE(wd.tick(Time::ms(4), Celsius{83.8}));
  EXPECT_FALSE(wd.tick(Time::ms(5), Celsius{83.5}));
  EXPECT_EQ(wd.engagements(), 0u);
}

TEST(WatchdogTest, SmoothingRidesThroughOscillatingReadings) {
  // The per-epoch sensed temperature swings with the engine's serve bursts;
  // a raw cool sample must not disarm the watchdog (regression: un-smoothed,
  // the silence window never completed and the watchdog never fired).
  fault::WatchdogConfig cfg = wd_config();
  cfg.smoothing = Time::us(500);
  fault::Watchdog wd{cfg, Celsius{84.5}};
  bool engaged = false;
  for (int i = 0; i < 200; ++i) {
    const Time t = Time::us(50.0 * (i + 1));
    const Celsius seen{i % 2 == 0 ? 87.0 : 80.5};  // mean 83.75, swings +-3.25
    engaged = wd.tick(t, seen) || engaged;
  }
  EXPECT_TRUE(engaged) << "watchdog must hold its arm through reading swings";
  // Raw (no smoothing): the same sequence never engages -- every cool sample
  // disarms and the window restarts.
  fault::Watchdog raw{wd_config(), Celsius{84.5}};
  bool raw_engaged = false;
  for (int i = 0; i < 200; ++i) {
    const Time t = Time::us(50.0 * (i + 1));
    const Celsius seen{i % 2 == 0 ? 87.0 : 80.5};
    raw_engaged = raw.tick(t, seen) || raw_engaged;
  }
  EXPECT_FALSE(raw_engaged);
}

TEST(WatchdogTest, DisabledNeverEngages) {
  fault::WatchdogConfig cfg = wd_config();
  cfg.enabled = false;
  fault::Watchdog wd{cfg, Celsius{84.5}};
  for (int i = 1; i <= 100; ++i) {
    EXPECT_FALSE(wd.tick(Time::ms(0.1 * i), Celsius{84.0}));
  }
  EXPECT_EQ(wd.engagements(), 0u);
}

// ---- Experiment-key gating and jobs-independence ----------------------------

TEST(FaultKeyTest, FaultFreeConfigKeepsPreFaultHash) {
  // The fault config is hashed only when enabled, so pre-existing experiment
  // keys (and their derived seeds and golden results) are unchanged by the
  // fault layer's existence -- including watchdog-tuning edits at zero rates.
  sys::SystemConfig plain;
  sys::SystemConfig tuned;
  tuned.fault.watchdog.window = Time::ms(7);
  tuned.fault.retry.max_retries = 9;
  ASSERT_FALSE(tuned.fault.enabled());
  EXPECT_EQ(runner::config_hash(plain), runner::config_hash(tuned));

  sys::SystemConfig faulty;
  faulty.fault.warning_drop_rate = 0.5;
  EXPECT_NE(runner::config_hash(plain), runner::config_hash(faulty));
  // Distinct fault environments are distinct experiments.
  sys::SystemConfig faulty2 = faulty;
  faulty2.fault.warning_drop_rate = 0.25;
  EXPECT_NE(runner::config_hash(faulty), runner::config_hash(faulty2));
}

class FaultSweepTest : public ::testing::Test {
 protected:
  // Scale-8 set: small enough for a unit test, hot enough under naive
  // offloading to raise warnings.
  static const sys::WorkloadSet& set() {
    static const sys::WorkloadSet s{8, 1};
    return s;
  }
};

TEST_F(FaultSweepTest, FaultPatternsBitIdenticalAcrossJobsCounts) {
  std::vector<runner::Experiment> experiments;
  for (const auto scenario : {sys::Scenario::kCoolPimSw, sys::Scenario::kCoolPimHw,
                              sys::Scenario::kNaiveOffloading}) {
    runner::Experiment e;
    e.workload = "pagerank";
    e.config.scenario = scenario;
    e.config.fault.warning_drop_rate = 0.5;
    e.config.fault.sensor_noise_sigma_c = 0.25;
    experiments.push_back(e);
  }
  runner::RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  runner::RunOptions parallel;
  parallel.jobs = 8;
  parallel.use_cache = false;
  const auto a = runner::run_sweep(set(), experiments, serial);
  const auto b = runner::run_sweep(set(), experiments, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peak_dram_temp.value(), b[i].peak_dram_temp.value());
    EXPECT_EQ(a[i].exec_time, b[i].exec_time);
    EXPECT_EQ(a[i].thermal_warnings, b[i].thermal_warnings);
    EXPECT_EQ(a[i].faults.warnings_offered, b[i].faults.warnings_offered);
    EXPECT_EQ(a[i].faults.warnings_dropped, b[i].faults.warnings_dropped);
    EXPECT_EQ(a[i].faults.watchdog_engagements, b[i].faults.watchdog_engagements);
  }
}

TEST_F(FaultSweepTest, ZeroRateConfigBitIdenticalToFaultFreeRun) {
  // A config that merely touched (but did not enable) the fault layer takes
  // the exact pre-fault code path: same key, same seed, same result.
  sys::SystemConfig plain;
  plain.scenario = sys::Scenario::kCoolPimHw;
  sys::SystemConfig touched = plain;
  touched.fault.watchdog.min_interval = Time::ms(9);
  ASSERT_FALSE(touched.fault.enabled());
  runner::RunOptions opt;
  opt.jobs = 1;
  opt.use_cache = false;
  const auto a = runner::run_one(set(), "pagerank", sys::Scenario::kCoolPimHw, plain, opt);
  const auto b = runner::run_one(set(), "pagerank", sys::Scenario::kCoolPimHw, touched, opt);
  EXPECT_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.thermal_warnings, b.thermal_warnings);
  EXPECT_FALSE(a.faults.active);
  EXPECT_FALSE(b.faults.active);
}

TEST_F(FaultSweepTest, WatchdogBoundsTemperatureAtFullDrop) {
  // Naive offloading at scale 8 runs the stack hot; with every warning
  // dropped, HW-DynT is blind and only the watchdog throttles.  It must not
  // end hotter than the warning threshold's phase boundary by more than the
  // naive (uncontrolled) profile -- i.e. the watchdog actually degrades.
  runner::RunOptions opt;
  opt.jobs = 1;
  opt.use_cache = false;
  sys::SystemConfig blind;
  blind.scenario = sys::Scenario::kCoolPimHw;
  blind.fault.warning_drop_rate = 1.0;
  const auto guarded =
      runner::run_one(set(), "pagerank", sys::Scenario::kCoolPimHw, blind, opt);
  sys::SystemConfig off = blind;
  off.fault.watchdog.enabled = false;
  const auto open_loop =
      runner::run_one(set(), "pagerank", sys::Scenario::kCoolPimHw, off, opt);
  EXPECT_LE(guarded.peak_dram_temp.value(), open_loop.peak_dram_temp.value());
  if (guarded.faults.watchdog_engagements > 0) {
    EXPECT_LT(guarded.peak_dram_temp.value(), open_loop.peak_dram_temp.value());
  }
}

}  // namespace
}  // namespace coolpim
