// Tests for the PIM <-> CUDA instruction translation (paper Table III).
#include <gtest/gtest.h>

#include "core/translate.hpp"

namespace coolpim::core {
namespace {

using hmc::PimOpcode;

TEST(TranslateTest, TableThreeRows) {
  // Arithmetic: signed add -> atomicAdd.
  EXPECT_EQ(to_cuda(PimOpcode::kSignedAdd8), CudaAtomic::kAtomicAdd);
  EXPECT_EQ(to_cuda(PimOpcode::kSignedAdd16), CudaAtomic::kAtomicAdd);
  // Bitwise: swap / bit write -> atomicExch.
  EXPECT_EQ(to_cuda(PimOpcode::kSwap), CudaAtomic::kAtomicExch);
  EXPECT_EQ(to_cuda(PimOpcode::kBitWrite), CudaAtomic::kAtomicExch);
  // Boolean: AND/OR -> atomicAnd / atomicOr.
  EXPECT_EQ(to_cuda(PimOpcode::kAnd), CudaAtomic::kAtomicAnd);
  EXPECT_EQ(to_cuda(PimOpcode::kOr), CudaAtomic::kAtomicOr);
  // Comparison: CAS-equal/greater -> atomicCAS / atomicMax.
  EXPECT_EQ(to_cuda(PimOpcode::kCasEqual), CudaAtomic::kAtomicCAS);
  EXPECT_EQ(to_cuda(PimOpcode::kCasGreater), CudaAtomic::kAtomicMax);
}

TEST(TranslateTest, GraphPimExtensions) {
  EXPECT_EQ(to_cuda(PimOpcode::kFpAdd), CudaAtomic::kAtomicAdd);
  EXPECT_EQ(to_cuda(PimOpcode::kFpMin), CudaAtomic::kAtomicMin);
}

TEST(TranslateTest, EveryCudaAtomicMapsToPim) {
  // Compiler offload direction: all CUDA atomics used by the workloads have
  // a PIM equivalent, so any kernel can be fully offloaded.
  for (const auto op : {CudaAtomic::kAtomicAdd, CudaAtomic::kAtomicExch, CudaAtomic::kAtomicAnd,
                        CudaAtomic::kAtomicOr, CudaAtomic::kAtomicCAS, CudaAtomic::kAtomicMax,
                        CudaAtomic::kAtomicMin}) {
    EXPECT_NO_THROW((void)to_pim(op));
  }
}

TEST(TranslateTest, NamesAreCudaSpelling) {
  EXPECT_EQ(to_string(CudaAtomic::kAtomicAdd), "atomicAdd");
  EXPECT_EQ(to_string(CudaAtomic::kAtomicCAS), "atomicCAS");
}

// Property: round-tripping CUDA -> PIM -> CUDA stays within the same
// semantic family (shadow-kernel generation then dynamic decode translation
// must not change what the instruction does).
class RoundTrip : public ::testing::TestWithParam<CudaAtomic> {};

TEST_P(RoundTrip, StaysInFamily) {
  const CudaAtomic original = GetParam();
  const CudaAtomic back = to_cuda(to_pim(original));
  EXPECT_TRUE(same_family(original, back))
      << to_string(original) << " -> " << to_string(back);
}

INSTANTIATE_TEST_SUITE_P(AllAtomics, RoundTrip,
                         ::testing::Values(CudaAtomic::kAtomicAdd, CudaAtomic::kAtomicExch,
                                           CudaAtomic::kAtomicAnd, CudaAtomic::kAtomicOr,
                                           CudaAtomic::kAtomicCAS, CudaAtomic::kAtomicMax,
                                           CudaAtomic::kAtomicMin));

// Property: PIM -> CUDA -> PIM preserves the PIM op class.
class PimRoundTrip : public ::testing::TestWithParam<PimOpcode> {};

TEST_P(PimRoundTrip, PreservesClass) {
  const PimOpcode original = GetParam();
  const PimOpcode back = to_pim(to_cuda(original));
  EXPECT_EQ(hmc::classify(original), hmc::classify(back));
}

INSTANTIATE_TEST_SUITE_P(AllPimOps, PimRoundTrip,
                         ::testing::Values(PimOpcode::kSignedAdd8, PimOpcode::kSwap,
                                           PimOpcode::kAnd, PimOpcode::kOr,
                                           PimOpcode::kCasEqual));

}  // namespace
}  // namespace coolpim::core
