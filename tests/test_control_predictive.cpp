// Regression tests for the predictive policies: the MPC rollout pinned
// against a hand-computed RC solve, the policy-table boundary-bin clamping,
// the fitted-CSV loader, and the end-to-end guarantee both policies exist
// for -- peak DRAM temperature stays under the 85 C ceiling on the golden
// scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "control/mpc.hpp"
#include "control/policy_table.hpp"
#include "runner/experiment.hpp"
#include "sys/system.hpp"

namespace coolpim::control {
namespace {

TEST(RcModelTest, PredictPeakMatchesHandComputedTwoEpochSolve) {
  // T_{k+1} = T_ss + (T_k - T_ss) * alpha, from 80 C toward 90 C at
  // alpha = 0.5: epoch 1 -> 85, epoch 2 -> 87.5.  The peak of a monotone
  // rise is the last step.
  EXPECT_DOUBLE_EQ(rc_predict_peak(80.0, 90.0, 0.5, 2), 87.5);
  // Cooling toward a lower target never exceeds the start: peak = T_0.
  EXPECT_DOUBLE_EQ(rc_predict_peak(90.0, 80.0, 0.5, 2), 90.0);
  // Zero horizon predicts the present.
  EXPECT_DOUBLE_EQ(rc_predict_peak(83.0, 99.0, 0.5, 0), 83.0);
}

TEST(RcModelTest, InferSteadyRecoversTheAsymptote) {
  // Generate one exponential step toward T_ss = 88 and invert it.
  const double alpha = 0.6;
  const double t_prev = 80.0;
  const double t_now = 88.0 + (t_prev - 88.0) * alpha;
  EXPECT_NEAR(rc_infer_steady(t_prev, t_now, alpha), 88.0, 1e-9);
}

TEST(MpcPolicyTest, RolloutPicksTheHandComputedLevel) {
  // Two readings 1 ms apart on the default config (tau = 1.5 ms, so
  // alpha = e^(-2/3)), drawn from an exact exponential approach to
  // T_ss = 86 C starting at 80 C.
  const MpcConfig cfg;
  MpcPolicy p{cfg};
  const double alpha = std::exp(-1.0 / cfg.rc.tau_ms);
  const double t1 = 80.0;
  const double t2 = 86.0 + (t1 - 86.0) * alpha;

  p.on_epoch(Reading{Celsius{t1}}, Time::ms(1.0));  // bootstrap, no estimate yet
  EXPECT_EQ(p.throttle_level(), 0u);
  p.on_epoch(Reading{Celsius{t2}}, Time::ms(2.0));

  // The first estimate is the raw two-point inversion: exactly 86 C.
  EXPECT_NEAR(p.steady_estimate_c(), 86.0, 1e-9);
  // Hand solve of the level scan: limit = 85 - 1 = 84.  Level 0 predicts the
  // full approach to 86 C (fails); level 1 scales the 61 C rise above ambient
  // by heat_scale(1) = 1 - 0.6/16, settling at 25 + 61 * 0.9625 = 83.7 C,
  // which clears the guard band -- the least-throttled passing level is 1.
  EXPECT_EQ(p.throttle_level(), 1u);
}

TEST(MpcPolicyTest, WarningStepPinsItsFloorThroughTheSettleWindow) {
  const MpcConfig cfg;
  MpcPolicy p{cfg};
  p.on_epoch(Reading{Celsius{80.0}}, Time::ms(1.0));
  p.on_epoch(Reading{Celsius{80.5}}, Time::ms(2.0));
  const std::uint32_t modeled = p.throttle_level();
  // Reactive fallback: a delivered warning steps levels/8 = 2 immediately.
  p.on_thermal_warning(Time::ms(2.1));
  EXPECT_EQ(p.throttle_level(), modeled + 2);
  // Inside the settle window the model may not relax below the warning step,
  // even on a cool reading that would otherwise choose level 0.
  p.on_epoch(Reading{Celsius{60.0}}, Time::ms(3.0));
  EXPECT_GE(p.throttle_level(), modeled + 2);
}

TEST(PolicyTableTest, LookupClampsAtTheBoundaryBins) {
  const PolicyTable table = default_policy_table();  // [79, 87) in 1 C bins
  bool clamped = false;
  // Far below the fitted range: first bin, flagged as clamped.
  EXPECT_DOUBLE_EQ(table.lookup(-10.0, &clamped), table.allow.front());
  EXPECT_TRUE(clamped);
  // Far above: last bin, flagged.
  EXPECT_DOUBLE_EQ(table.lookup(500.0, &clamped), table.allow.back());
  EXPECT_TRUE(clamped);
  // Exactly on the boundaries of the covered range: not clamped.
  EXPECT_DOUBLE_EQ(table.lookup(79.0, &clamped), table.allow.front());
  EXPECT_FALSE(clamped);
  EXPECT_DOUBLE_EQ(table.lookup(86.5, &clamped), table.allow.back());
  EXPECT_FALSE(clamped);
  // Interior bin: 82.5 C falls in bin 3.
  EXPECT_DOUBLE_EQ(table.lookup(82.5, &clamped), table.allow[3]);
  EXPECT_FALSE(clamped);
}

TEST(PolicyTableTest, WarningRatchetCapsBelowTheTableTarget) {
  TablePolicy p{PolicyTableConfig{}};
  p.on_epoch(Reading{Celsius{84.3}}, Time::ms(1.0));  // bin 5 -> 0.35
  EXPECT_DOUBLE_EQ(p.effective_allow(), 0.35);
  p.on_thermal_warning(Time::ms(1.1));
  EXPECT_DOUBLE_EQ(p.effective_allow(), 0.35 * 0.75);
  // A cooler epoch raises the table target, but the ratcheted cap holds.
  p.on_epoch(Reading{Celsius{79.5}}, Time::ms(2.0));
  EXPECT_DOUBLE_EQ(p.effective_allow(), 0.35 * 0.75);
}

TEST(PolicyTableTest, LoaderRoundTripsTheFitterFormat) {
  const std::string path = testing::TempDir() + "policy_table_roundtrip.csv";
  {
    std::ofstream out{path};
    out << "# fitted by tools/fit_policy.py\n"
        << "80.0,1.0\n"
        << "82.0,0.6\n"
        << "84.0,0.3\n";
  }
  const PolicyTable t = load_policy_table(path);
  EXPECT_DOUBLE_EQ(t.t_min_c, 80.0);
  EXPECT_DOUBLE_EQ(t.bin_width_c, 2.0);
  ASSERT_EQ(t.allow.size(), 3u);
  EXPECT_DOUBLE_EQ(t.allow[1], 0.6);
  std::remove(path.c_str());
}

TEST(PolicyTableTest, CheckedInDefaultMatchesTheCompiledInTable) {
  // tools/policy_table_default.csv promises to reproduce the built-in curve
  // bit-for-bit; loading it must give exactly default_policy_table().
  const PolicyTable loaded =
      load_policy_table(std::string{COOLPIM_TOOLS_DIR} + "/policy_table_default.csv");
  EXPECT_EQ(loaded, default_policy_table());
}

TEST(PolicyTableTest, LoaderRejectsMalformedTables) {
  const std::string path = testing::TempDir() + "policy_table_bad.csv";
  {
    std::ofstream out{path};
    out << "80.0,1.0\n81.0,not-a-number\n";
  }
  EXPECT_THROW((void)load_policy_table(path), ConfigError);
  {
    std::ofstream out{path};
    out << "80.0,1.0\n81.0,0.9\n83.5,0.8\n";  // non-uniform spacing
  }
  EXPECT_THROW((void)load_policy_table(path), ConfigError);
  EXPECT_THROW((void)load_policy_table(testing::TempDir() + "missing.csv"), ConfigError);
  std::remove(path.c_str());
}

TEST(PredictiveGoldenTest, BothPoliciesKeepPeakUnderTheCeiling) {
  // The property the predictive policies exist for, end to end on the
  // hottest GraphBIG scenario: predicted throttling holds the peak DRAM
  // temperature under the 85 C warning ceiling.
  const sys::WorkloadSet set{14, 1};
  for (const auto scenario : {sys::Scenario::kMpc, sys::Scenario::kPolicyTable}) {
    for (const char* workload : {"dc", "pagerank"}) {
      SCOPED_TRACE(std::string{sys::to_string(scenario)} + " / " + workload);
      const sys::RunResult r = runner::run_one(set, workload, scenario, {});
      EXPECT_LE(r.peak_dram_temp.value(), 85.0);
      EXPECT_FALSE(r.shut_down);
    }
  }
}

}  // namespace
}  // namespace coolpim::control
