// Tests for the kernel IR and the offload / shadow compilation passes.
#include <gtest/gtest.h>

#include "core/kernel_ir.hpp"

namespace coolpim::core {
namespace {

KernelIr sample_kernel() {
  KernelIr k;
  k.name = "bfs_kernel";
  k.ops = {
      {OpKind::kCompute, MemSpace::kGlobal, {}, {}},
      {OpKind::kLoad, MemSpace::kGlobal, {}, {}},
      {OpKind::kCudaAtomic, MemSpace::kPimRegion, CudaAtomic::kAtomicMin, {}},
      {OpKind::kCudaAtomic, MemSpace::kShared, CudaAtomic::kAtomicAdd, {}},
      {OpKind::kStore, MemSpace::kGlobal, {}, {}},
      {OpKind::kCudaAtomic, MemSpace::kPimRegion, CudaAtomic::kAtomicAdd, {}},
  };
  return k;
}

TEST(KernelIrTest, OffloadPassRewritesOnlyPimRegionAtomics) {
  const KernelIr pim = offload_pass(sample_kernel());
  EXPECT_EQ(pim.count(OpKind::kPimAtomic), 2u);
  EXPECT_EQ(pim.count(OpKind::kCudaAtomic), 1u);  // the shared-memory atomic
  EXPECT_EQ(pim.count(OpKind::kCompute), 1u);
  EXPECT_EQ(pim.ops[2].pim, to_pim(CudaAtomic::kAtomicMin));
  EXPECT_EQ(pim.ops[5].pim, to_pim(CudaAtomic::kAtomicAdd));
}

TEST(KernelIrTest, ShadowPassProducesPimFreeKernel) {
  const KernelIr pim = offload_pass(sample_kernel());
  const KernelIr shadow = shadow_pass(pim);
  EXPECT_TRUE(shadow.is_pim_free());
  EXPECT_EQ(shadow.name, "bfs_kernel_np");
  EXPECT_EQ(shadow.ops.size(), pim.ops.size());
}

TEST(KernelIrTest, ShadowOfOffloadIsEquivalentToOriginal) {
  // The paper's claim: the mappings are simple source-to-source translations,
  // so the shadow kernel computes the same thing as the original.
  const KernelIr original = sample_kernel();
  const KernelIr pim = offload_pass(original);
  const KernelIr shadow = shadow_pass(pim);
  EXPECT_TRUE(equivalent(original, pim));
  EXPECT_TRUE(equivalent(original, shadow));
  EXPECT_TRUE(equivalent(pim, shadow));
}

TEST(KernelIrTest, EquivalenceRejectsRealDifferences) {
  KernelIr a = sample_kernel();
  KernelIr b = sample_kernel();
  b.ops[0].kind = OpKind::kLoad;  // compute -> load
  EXPECT_FALSE(equivalent(a, b));
  b = sample_kernel();
  b.ops[2].cuda = CudaAtomic::kAtomicAdd;  // comparison family -> arithmetic
  EXPECT_FALSE(equivalent(a, b));
  b = sample_kernel();
  b.ops.pop_back();
  EXPECT_FALSE(equivalent(a, b));
  b = sample_kernel();
  b.ops[3].space = MemSpace::kGlobal;
  EXPECT_FALSE(equivalent(a, b));
}

TEST(KernelIrTest, OffloadableAtomicCountForEq1) {
  const KernelIr original = sample_kernel();
  EXPECT_EQ(offloadable_atomics(original), 2u);
  // Counting is stable across the compilation passes.
  EXPECT_EQ(offloadable_atomics(offload_pass(original)), 2u);
}

TEST(KernelIrTest, PimFreeKernelUntouchedByShadowPass) {
  KernelIr k;
  k.name = "saxpy";
  k.ops = {{OpKind::kLoad, MemSpace::kGlobal, {}, {}},
           {OpKind::kCompute, MemSpace::kGlobal, {}, {}},
           {OpKind::kStore, MemSpace::kGlobal, {}, {}}};
  const KernelIr shadow = shadow_pass(k);
  EXPECT_TRUE(equivalent(k, shadow));
  EXPECT_EQ(shadow.count(OpKind::kCudaAtomic), 0u);
}

TEST(KernelIrTest, DoubleOffloadIsIdempotent) {
  const KernelIr once = offload_pass(sample_kernel());
  const KernelIr twice = offload_pass(once);
  EXPECT_EQ(once.count(OpKind::kPimAtomic), twice.count(OpKind::kPimAtomic));
  EXPECT_TRUE(equivalent(once, twice));
}

}  // namespace
}  // namespace coolpim::core
