// Tests for the workload characterizer (logical counts -> transactions).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "gpu/characterize.hpp"

namespace coolpim::gpu {
namespace {

TEST(CacheHitModelTest, SmallFootprintMostlyHits) {
  const GpuConfig cfg;
  const CacheHitModel model{cfg, 256 * 1024};  // fits in the 1 MB L2
  EXPECT_GT(model.random_hit_rate(), 0.95);
}

TEST(CacheHitModelTest, LargeFootprintMostlyMisses) {
  const GpuConfig cfg;
  const CacheHitModel model{cfg, 64ull * 1024 * 1024};
  EXPECT_LT(model.random_hit_rate(), 0.05);
}

TEST(CacheHitModelTest, MonotoneInFootprint) {
  const GpuConfig cfg;
  double prev = 1.1;
  for (const std::uint64_t mb : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    const CacheHitModel model{cfg, mb * 1024 * 1024};
    EXPECT_LE(model.random_hit_rate(), prev + 0.02);
    prev = model.random_hit_rate();
  }
}

TEST(CacheHitModelTest, StreamsNeverHit) {
  const GpuConfig cfg;
  const CacheHitModel model{cfg, 1024};
  EXPECT_DOUBLE_EQ(model.stream_hit_rate(), 0.0);
}

TEST(CacheHitModelTest, ZeroFootprintThrows) {
  const GpuConfig cfg;
  EXPECT_THROW((CacheHitModel{cfg, 0}), ConfigError);
}

TEST(CharacterizeTest, StreamingBytesBecomeLineTransactions) {
  const GpuConfig cfg;
  const CacheHitModel cache{cfg, 64ull * 1024 * 1024};  // ~0 hit rate
  graph::IterationProfile it;
  it.struct_scan_bytes = 64 * 1000;
  const auto d = characterize(it, cache);
  EXPECT_NEAR(d.read_txns, 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.write_txns, 0.0);
  EXPECT_DOUBLE_EQ(d.atomic_ops, 0.0);
}

TEST(CharacterizeTest, PropertyReadsFilteredByHitRate) {
  const GpuConfig cfg;
  const CacheHitModel big{cfg, 64ull * 1024 * 1024};
  const CacheHitModel small{cfg, 128 * 1024};
  graph::IterationProfile it;
  it.property_reads = 10000;
  const auto cold = characterize(it, big);
  const auto warm = characterize(it, small);
  EXPECT_GT(cold.read_txns, 0.9 * 10000);
  EXPECT_LT(warm.read_txns, 0.2 * 10000);
}

TEST(CharacterizeTest, AtomicsBypassCache) {
  // GraphPIM policy: PIM-target data lives in an uncacheable region, so the
  // atomic count passes through regardless of cache size.
  const GpuConfig cfg;
  const CacheHitModel small{cfg, 64 * 1024};
  graph::IterationProfile it;
  it.atomic_ops = 4242;
  const auto d = characterize(it, small);
  EXPECT_DOUBLE_EQ(d.atomic_ops, 4242.0);
  EXPECT_DOUBLE_EQ(d.read_txns, 0.0);
}

TEST(CharacterizeTest, WritesScaleWithMissRate) {
  const GpuConfig cfg;
  const CacheHitModel cold{cfg, 64ull * 1024 * 1024};
  graph::IterationProfile it;
  it.property_writes = 5000;
  const auto d = characterize(it, cold);
  EXPECT_GT(d.write_txns, 0.9 * 5000);
}

}  // namespace
}  // namespace coolpim::gpu
