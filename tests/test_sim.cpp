// Tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace coolpim::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ns(30), [&] { order.push_back(3); });
  q.schedule(Time::ns(10), [&] { order.push_back(1); });
  q.schedule(Time::ns(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, action] = q.pop();
    action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(Time::ns(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(Time::ns(10), [] {});
  (void)q.pop();
  EXPECT_THROW(q.schedule(Time::ns(5), [] {}), SimError);
}

TEST(SimulationTest, RunToCompletion) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(Time::ns(5), [&] { ++fired; });
  sim.schedule_in(Time::ns(15), [&] { ++fired; });
  const Time end = sim.run_to_completion();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(end, Time::ns(15));
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(Time::ns(5), [&] { ++fired; });
  sim.schedule_in(Time::ns(50), [&] { ++fired; });
  sim.run_until(Time::ns(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::ns(10));
  EXPECT_TRUE(sim.pending());
  sim.run_to_completion();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_in(Time::ns(10), [&] {
    times.push_back(sim.now().as_ns());
    sim.schedule_in(Time::ns(10), [&] { times.push_back(sim.now().as_ns()); });
  });
  sim.run_to_completion();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_DOUBLE_EQ(times[1], 20.0);
}

TEST(SimulationTest, PeriodicTicksUntilCancelled) {
  Simulation sim;
  int ticks = 0;
  sim.schedule_periodic(Time::us(1), [&] { return ++ticks < 5; });
  sim.run_to_completion();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), Time::us(5));
}

TEST(SimulationTest, PeriodicRequiresPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_periodic(Time::zero(), [] { return false; }), ConfigError);
}

TEST(SimulationTest, StopRequest) {
  Simulation sim;
  int fired = 0;
  sim.schedule_in(Time::ns(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(Time::ns(2), [&] { ++fired; });
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
}

TEST(SimulationTest, DrainedRunAdvancesToDeadline) {
  Simulation sim;
  sim.run_until(Time::us(7));
  EXPECT_EQ(sim.now(), Time::us(7));
}

}  // namespace
}  // namespace coolpim::sim
