// Tests for the extension workloads (cc, tc), the PEI-style coherent offload
// policy, and the energy accounting.
#include <gtest/gtest.h>

#include "control/baselines.hpp"
#include "gpu/engine.hpp"
#include "graph/generator.hpp"
#include "graph/reference.hpp"
#include "graph/workloads.hpp"
#include "sys/system.hpp"

namespace coolpim {
namespace {

const graph::CsrGraph& small_graph() {
  static const graph::CsrGraph g = graph::make_ldbc_like(11, 9);
  return g;
}

TEST(ConnectedComponentsTest, MatchesUnionFind) {
  const auto profile = graph::run_connected_components(small_graph());
  const auto ref = graph::reference::component_labels(small_graph());
  EXPECT_EQ(profile.result_checksum, graph::checksum_vector(ref));
  EXPECT_GT(profile.total_atomics(), 0u);
}

TEST(ConnectedComponentsTest, DisconnectedGraphKeepsLabels) {
  const auto g = graph::CsrGraph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}});
  const auto profile = graph::run_connected_components(g);
  const auto ref = graph::reference::component_labels(g);
  EXPECT_EQ(profile.result_checksum, graph::checksum_vector(ref));
  // Components: {0,1,2}, {3}, {4,5} -> labels 0,0,0,3,4,4.
  EXPECT_EQ(ref, (std::vector<graph::VertexId>{0, 0, 0, 3, 4, 4}));
}

TEST(TriangleCountTest, MatchesReference) {
  const auto profile = graph::run_triangle_count(small_graph());
  const auto ref = graph::reference::triangle_count(small_graph());
  EXPECT_EQ(profile.result_checksum, graph::checksum_bytes(&ref, sizeof(ref)));
  EXPECT_GT(ref, 0u);  // RMAT graphs close many wedges
}

TEST(TriangleCountTest, KnownSmallGraph) {
  // One triangle 0-1-2 plus a pendant edge (made symmetric for the counter).
  // The counter intersects full neighbour lists per ordered edge (v < u), so
  // each triangle contributes once per ordered edge pair: 3 per triangle.
  const auto g = graph::CsrGraph::from_edges(
      4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}, {2, 3}, {3, 2}});
  EXPECT_EQ(graph::reference::triangle_count(g), 3u);
  // Without the closing edge there is no triangle.
  const auto path = graph::CsrGraph::from_edges(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
  EXPECT_EQ(graph::reference::triangle_count(path), 0u);
}

TEST(ExtendedRegistryTest, OptInViaWorkloadSet) {
  const sys::WorkloadSet base{11, 2, /*include_extended=*/false};
  EXPECT_THROW(base.profile("cc"), ConfigError);
  const sys::WorkloadSet ext{11, 2, /*include_extended=*/true};
  EXPECT_EQ(ext.profile("cc").name, "cc");
  EXPECT_EQ(ext.profile("tc").name, "tc");
  EXPECT_EQ(sys::extended_workload_names().size(), 2u);
}

TEST(OffloadPolicyTest, CoherentPolicyAddsWritebackTraffic) {
  gpu::LaunchSpec spec;
  spec.warp_instructions = 1e6;
  spec.mem.atomic_ops = 1e5;
  spec.blocks = 64;
  spec.warps = 512;

  auto demand_for = [&](gpu::OffloadPolicy policy) {
    gpu::GpuConfig cfg;
    cfg.offload_policy = policy;
    control::NaivePolicy ctrl;
    gpu::ExecutionEngine engine{cfg, {spec}, ctrl};
    hmc::EpochService empty{};
    (void)engine.commit(Time::zero(), engine.launch_overhead, empty);
    return engine.plan(engine.launch_overhead, Time::us(10));
  };

  const auto graphpim = demand_for(gpu::OffloadPolicy::kUncacheableRegion);
  const auto pei = demand_for(gpu::OffloadPolicy::kCoherentWriteback);
  EXPECT_DOUBLE_EQ(graphpim.writes, 0.0);
  EXPECT_GT(pei.writes, 0.0);
  EXPECT_NEAR(pei.writes, pei.pim_ops * 0.35, 1e-6);
  EXPECT_DOUBLE_EQ(graphpim.pim_ops, pei.pim_ops);
}

TEST(EnergyAccountingTest, MeasuredRunAccumulatesEnergy) {
  const sys::WorkloadSet set{14, 1};
  sys::SystemConfig cfg;
  cfg.scenario = sys::Scenario::kCoolPimHw;
  sys::System system{cfg};
  const auto r = system.run(set.profile("dc"));
  EXPECT_GT(r.cube_energy_j, 0.0);
  EXPECT_GT(r.fan_energy_j, 0.0);
  EXPECT_NEAR(r.total_energy_j(), r.cube_energy_j + r.fan_energy_j, 1e-12);
  // Sanity: average power implied by the energy is within the cube's range.
  const double avg_w = r.cube_energy_j / r.exec_time.as_sec();
  EXPECT_GT(avg_w, 5.0);
  EXPECT_LT(avg_w, 120.0);
}

TEST(EnergyAccountingTest, OffloadingSavesEnergyWhenCool) {
  // With the ideal-thermal assumption, offloading moves less data and spends
  // less total energy -- the original PIM motivation.
  const sys::WorkloadSet set{14, 1};
  auto energy = [&](sys::Scenario s) {
    sys::SystemConfig cfg;
    cfg.scenario = s;
    sys::System system{cfg};
    return system.run(set.profile("dc")).cube_energy_j;
  };
  EXPECT_LT(energy(sys::Scenario::kIdealThermal), energy(sys::Scenario::kNonOffloading));
}

}  // namespace
}  // namespace coolpim
