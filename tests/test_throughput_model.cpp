// Tests for the analytic epoch-level HMC service model, including the
// cross-check against the event-detailed device (DESIGN.md section 5).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "hmc/device.hpp"
#include "hmc/throughput_model.hpp"

namespace coolpim::hmc {
namespace {

TEST(ThroughputModelTest, UnderloadedServesEverything) {
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  d.reads = 1000.0;
  const auto s = model.serve(d, Time::us(10), Celsius{50.0});
  EXPECT_DOUBLE_EQ(s.served_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.reads, 1000.0);
  EXPECT_EQ(s.phase, ThermalPhase::kNormal);
}

TEST(ThroughputModelTest, LinkBoundScalesProportionally) {
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  // 10 us at 30 GFLIT/s = 300k FLITs; demand 100k reads = 600k FLITs.
  d.reads = 100000.0;
  const auto s = model.serve(d, Time::us(10), Celsius{50.0});
  EXPECT_NEAR(s.served_fraction, 0.5, 1e-6);
  EXPECT_NEAR(s.link_data.as_gbps(), 320.0, 0.5);
}

TEST(ThroughputModelTest, MixedDemandScalesAllClasses) {
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  d.reads = 100000.0;
  d.pim_ops = 50000.0;
  const auto s = model.serve(d, Time::us(10), Celsius{50.0});
  EXPECT_LT(s.served_fraction, 1.0);
  EXPECT_NEAR(s.reads / s.pim_ops, 2.0, 1e-9);  // fair proportional scaling
}

TEST(ThroughputModelTest, DeratingThrottlesService) {
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  d.reads = 100000.0;
  const auto cool = model.serve(d, Time::us(10), Celsius{60.0});
  const auto hot = model.serve(d, Time::us(10), Celsius{90.0});
  const auto hotter = model.serve(d, Time::us(10), Celsius{99.0});
  EXPECT_LT(hot.served_fraction, cool.served_fraction);
  EXPECT_LT(hotter.served_fraction, hot.served_fraction);
  EXPECT_EQ(hot.phase, ThermalPhase::kExtended);
  EXPECT_NEAR(hot.served_fraction / cool.served_fraction,
              model.policy().extended_service_scale, 1e-6);
}

TEST(ThroughputModelTest, ShutdownServesNothing) {
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  d.reads = 100.0;
  const auto s = model.serve(d, Time::us(10), Celsius{106.0});
  EXPECT_TRUE(s.shut_down);
  EXPECT_DOUBLE_EQ(s.served_fraction, 0.0);
}

TEST(ThroughputModelTest, InternalBandwidthCapBindsForPimFloods) {
  HmcConfig cfg = hmc20_config();
  cfg.internal_peak = Bandwidth::gbps(256.0);  // artificially low TSV budget
  const ThroughputModel model{cfg};
  EpochDemand d;
  d.pim_ops = 50000.0;  // 5 op/ns over 10 us: 640 GB/s internal demanded
  const auto s = model.serve(d, Time::us(10), Celsius{50.0});
  EXPECT_NEAR(s.dram_internal.as_gbps(), 256.0, 1.0);
  EXPECT_LT(s.served_fraction, 1.0);
}

TEST(ThroughputModelTest, ZeroEpochThrows) {
  const ThroughputModel model{hmc20_config()};
  EXPECT_THROW((void)model.serve(EpochDemand{}, Time::zero(), Celsius{50.0}), ConfigError);
}

// Integration cross-check: for a balanced read/write mix (where the pooled
// FLIT budget of the analytic model matches the full-duplex links exactly)
// the analytic model's saturated bandwidth matches the event-detailed device
// within 15%.
TEST(ThroughputCrossCheck, SaturatedBalancedMixMatchesDetailedDevice) {
  // Detailed device, balanced mix.
  sim::Simulation sim;
  Device dev{sim, hmc20_config()};
  constexpr int kPairs = 10000;
  Time last;
  for (int i = 0; i < kPairs; ++i) {
    const auto addr = static_cast<std::uint64_t>(i) * 64;
    dev.submit({TransactionType::kRead64, addr, 0}, [&](const Response&) { last = sim.now(); });
    dev.submit({TransactionType::kWrite64, addr + 64 * 1024, 0},
               [&](const Response&) { last = sim.now(); });
  }
  sim.run_to_completion();
  const double detailed_gbps = kPairs * 128.0 / last.as_sec() * 1e-9;

  // Analytic model, saturated balanced demand.
  const ThroughputModel model{hmc20_config()};
  EpochDemand d;
  d.reads = 1e9;
  d.writes = 1e9;
  const auto s = model.serve(d, Time::ms(1), Celsius{50.0});
  const double analytic_gbps = s.link_data.as_gbps();

  EXPECT_NEAR(detailed_gbps, analytic_gbps, 0.15 * analytic_gbps);
}

// Property sweep: served fraction is monotone non-increasing in demand.
class AdmissionMonotone : public ::testing::TestWithParam<double> {};

TEST_P(AdmissionMonotone, MoreDemandNoMoreService) {
  const ThroughputModel model{hmc20_config()};
  const double pim_share = GetParam();
  double prev = 1.0;
  for (double total = 1e4; total <= 1e6; total *= 2.0) {
    EpochDemand d;
    d.pim_ops = total * pim_share;
    d.reads = total * (1.0 - pim_share);
    const auto s = model.serve(d, Time::us(10), Celsius{50.0});
    EXPECT_LE(s.served_fraction, prev + 1e-12);
    prev = s.served_fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(PimShares, AdmissionMonotone,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace coolpim::hmc
