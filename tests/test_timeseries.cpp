// Tests for TimeSeries recording and sampling.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/timeseries.hpp"

namespace coolpim {
namespace {

TEST(TimeSeriesTest, RecordAndAccess) {
  TimeSeries ts{"pim_rate"};
  EXPECT_TRUE(ts.empty());
  ts.record(Time::ms(0), 1.0);
  ts.record(Time::ms(1), 2.0);
  ts.record(Time::ms(2), 3.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.name(), "pim_rate");
  EXPECT_DOUBLE_EQ(ts.value_at(1), 2.0);
  EXPECT_EQ(ts.time_at(2), Time::ms(2));
}

TEST(TimeSeriesTest, OutOfOrderThrows) {
  TimeSeries ts{"x"};
  ts.record(Time::ms(5), 1.0);
  EXPECT_THROW(ts.record(Time::ms(4), 2.0), SimError);
  // Equal timestamps are allowed (same-epoch samples).
  EXPECT_NO_THROW(ts.record(Time::ms(5), 3.0));
}

TEST(TimeSeriesTest, SampleAtZeroOrderHold) {
  TimeSeries ts{"x"};
  ts.record(Time::ms(1), 10.0);
  ts.record(Time::ms(3), 20.0);
  ts.record(Time::ms(5), 30.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(0)), 10.0);  // before first: clamp
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(1)), 10.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(2)), 10.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(3)), 20.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(4.5)), 20.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(Time::ms(99)), 30.0);
}

TEST(TimeSeriesTest, TimeWeightedMean) {
  TimeSeries ts{"x"};
  // Value 10 for 1 ms, then 30 for 3 ms: mean = (10*1 + 30*3) / 4 = 25.
  ts.record(Time::ms(0), 10.0);
  ts.record(Time::ms(1), 30.0);
  ts.record(Time::ms(4), 0.0);  // terminal sample marks the span end
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 25.0);
}

TEST(TimeSeriesTest, SingleSampleMean) {
  TimeSeries ts{"x"};
  ts.record(Time::ms(1), 7.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 7.0);
}

TEST(TimeSeriesTest, Resample) {
  TimeSeries ts{"x"};
  ts.record(Time::ms(0), 1.0);
  ts.record(Time::ms(2), 2.0);
  ts.record(Time::ms(4), 3.0);
  const auto grid = ts.resample(Time::ms(0), Time::ms(1), 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 2.0);
  EXPECT_DOUBLE_EQ(grid[3], 2.0);
  EXPECT_DOUBLE_EQ(grid[4], 3.0);
}

}  // namespace
}  // namespace coolpim
