// Lock-step batched sweep executor tests (DESIGN.md section 14): every
// RunResult produced by the batched path -- any --sweep-batch width crossed
// with any --jobs count, homogeneous or mixed cooling -- is bit-identical to
// the scalar runner, the result cache interoperates, per-task executor
// counters are recorded, and the documented contracts stay pinned.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "obs/names.hpp"
#include "obs/observer.hpp"
#include "runner/experiment.hpp"
#include "runner/sweep_batch.hpp"

namespace coolpim::runner {
namespace {

const sys::WorkloadSet& set() {
  static const sys::WorkloadSet s{14, 1};
  return s;
}

/// Bit-for-bit RunResult comparison, timeseries included: the batched
/// executor's contract is *bit*-identity, not closeness.
void expect_identical(const sys::RunResult& a, const sys::RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.link_data_bytes, b.link_data_bytes);
  EXPECT_EQ(a.link_raw_bytes, b.link_raw_bytes);
  EXPECT_EQ(a.dram_internal_bytes, b.dram_internal_bytes);
  EXPECT_EQ(a.pim_ops, b.pim_ops);
  EXPECT_EQ(a.host_atomics, b.host_atomics);
  EXPECT_EQ(a.cube_energy_j, b.cube_energy_j);
  EXPECT_EQ(a.fan_energy_j, b.fan_energy_j);
  EXPECT_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
  EXPECT_EQ(a.start_dram_temp.value(), b.start_dram_temp.value());
  EXPECT_EQ(a.thermal_warnings, b.thermal_warnings);
  EXPECT_EQ(a.shut_down, b.shut_down);
  EXPECT_EQ(a.time_above_normal, b.time_above_normal);
  for (const auto& [ts_a, ts_b] :
       {std::pair{&a.pim_rate, &b.pim_rate}, std::pair{&a.dram_temp, &b.dram_temp},
        std::pair{&a.link_bw, &b.link_bw}}) {
    EXPECT_EQ(ts_a->times(), ts_b->times());
    EXPECT_EQ(ts_a->values(), ts_b->values());
  }
}

/// The golden-matrix shape: two workloads x every scenario, plus a
/// mixed-cooling tail so chunks hold lanes with differing sink networks
/// (exercising the mixed-geometry table path end to end).  High-end active
/// is the only non-default cooling that completes under max_time at this
/// scale; the weaker sinks shut down indefinitely on scalar and batched
/// paths alike.
std::vector<Experiment> matrix_experiments() {
  std::vector<Experiment> experiments;
  for (const std::string workload : {"dc", "pagerank"}) {
    for (const auto s : sys::kAllScenarios) {
      Experiment e;
      e.workload = workload;
      e.config.scenario = s;
      experiments.push_back(std::move(e));
    }
  }
  for (const auto s : {sys::Scenario::kCoolPimHw, sys::Scenario::kCoolPimSw}) {
    Experiment e;
    e.workload = "dc";
    e.config.scenario = s;
    e.config.cooling = power::CoolingType::kHighEndActive;
    experiments.push_back(std::move(e));
  }
  return experiments;
}

TEST(SweepBatch, BitIdenticalToScalarAtAnyBatchWidthAndJobs) {
  const auto experiments = matrix_experiments();
  RunOptions scalar;
  scalar.jobs = 1;
  scalar.use_cache = false;
  const auto base = run_sweep(set(), experiments, scalar);

  for (const unsigned batch : {2u, 8u}) {
    for (const unsigned jobs : {1u, 8u}) {
      SCOPED_TRACE("sweep_batch=" + std::to_string(batch) + " jobs=" + std::to_string(jobs));
      RunOptions opt;
      opt.sweep_batch = batch;
      opt.jobs = jobs;
      opt.use_cache = false;
      const auto got = run_sweep(set(), experiments, opt);
      ASSERT_EQ(got.size(), base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE(base[i].workload + " / " + base[i].scenario);
        expect_identical(got[i], base[i]);
      }
    }
  }
}

TEST(SweepBatch, RunLockstepMatchesSystemRunDirectly) {
  // The executor layer alone (no experiment key/cache protocol): a batch
  // wider than the task list, so lanes sit empty and coast.
  std::vector<SweepBatchTask> tasks;
  for (const auto s : {sys::Scenario::kCoolPimHw, sys::Scenario::kNaiveOffloading,
                       sys::Scenario::kNonOffloading}) {
    SweepBatchTask t;
    t.profile = &set().profile("kcore");
    t.config.scenario = s;
    t.config.run_seed = 7;
    tasks.push_back(t);
  }
  const auto batched = run_lockstep(tasks, 8, 1);
  ASSERT_EQ(batched.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    sys::System sys_run{tasks[i].config};
    const auto want = sys_run.run(*tasks[i].profile);
    SCOPED_TRACE(want.scenario);
    expect_identical(batched[i], want);
  }
}

TEST(SweepBatch, CacheInteroperatesWithTheScalarPath) {
  clear_result_cache();
  std::vector<Experiment> experiments;
  Experiment e;
  e.workload = "dc";
  e.config.scenario = sys::Scenario::kCoolPimHw;
  experiments.push_back(e);
  e.config.scenario = sys::Scenario::kNonOffloading;
  experiments.push_back(e);

  // Batched sweep populates the cache under the same keys run_task uses...
  RunOptions batched;
  batched.sweep_batch = 4;
  const auto first = run_sweep(set(), experiments, batched);
  EXPECT_EQ(cache_stats().entries, 2u);
  EXPECT_EQ(cache_stats().misses, 2u);

  // ...so a scalar re-run hits, and a batched re-run resolves hits up front.
  RunOptions scalar;
  const auto scalar_again = run_sweep(set(), experiments, scalar);
  EXPECT_EQ(cache_stats().hits, 2u);
  const auto batched_again = run_sweep(set(), experiments, batched);
  EXPECT_EQ(cache_stats().hits, 4u);
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    expect_identical(scalar_again[i], first[i]);
    expect_identical(batched_again[i], first[i]);
  }
  clear_result_cache();
}

TEST(SweepBatch, PerTaskCountersAreRecordedAndJobsInvariant) {
  const auto experiments = matrix_experiments();
  const auto counters_at = [&](unsigned jobs) {
    obs::SweepObserver obs{/*want_trace=*/true, /*want_counters=*/true};
    RunOptions opt;
    opt.sweep_batch = 4;
    opt.jobs = jobs;
    opt.use_cache = false;
    opt.obs = &obs;
    (void)run_sweep(set(), experiments, opt);
    std::ostringstream csv;
    obs.write_counters_csv(csv);
    return csv.str();
  };
  const std::string serial = counters_at(1);
  // Executor counters present: one task marker per record, epochs counted,
  // the configured lane width as a gauge.
  EXPECT_NE(serial.find(std::string{obs::names::kRunnerSweepBatchTasks}), std::string::npos);
  EXPECT_NE(serial.find(std::string{obs::names::kRunnerSweepBatchEpochs}), std::string::npos);
  EXPECT_NE(serial.find(std::string{obs::names::kRunnerSweepBatchLanes}), std::string::npos);
  // Only per-run-invariant values are recorded, so the whole CSV -- executor
  // counters included -- is byte-identical at any jobs count.
  EXPECT_EQ(serial, counters_at(8));
}

std::string read_doc(const std::string& path) {
  std::ifstream doc{path};
  EXPECT_TRUE(doc.is_open()) << path << " missing";
  std::ostringstream ss;
  ss << doc.rdbuf();
  return ss.str();
}

TEST(SweepBatchDocsSync, PerformanceDesignAndObservabilityDocumentTheExecutor) {
  const std::string perf = read_doc(std::string{COOLPIM_DOCS_DIR} + "/PERFORMANCE.md");
  for (const char* needle : {"## 8.", "run_lockstep", "--sweep-batch", "step_lanes",
                             "bit-identical", "one chunk per worker"}) {
    EXPECT_NE(perf.find(needle), std::string::npos)
        << needle << " not documented in docs/PERFORMANCE.md";
  }
  const std::string design = read_doc(std::string{COOLPIM_REPO_DIR} + "/DESIGN.md");
  for (const char* needle : {"## 14", "SystemRun", "note_stepped", "bind_lane",
                             "lock-step", "h = 0"}) {
    EXPECT_NE(design.find(needle), std::string::npos)
        << needle << " not documented in DESIGN.md";
  }
  const std::string obs_doc = read_doc(std::string{COOLPIM_DOCS_DIR} + "/OBSERVABILITY.md");
  for (const auto name :
       {obs::names::kRunnerSweepBatchTasks, obs::names::kRunnerSweepBatchEpochs,
        obs::names::kRunnerSweepBatchLanes}) {
    EXPECT_NE(obs_doc.find(std::string{name}), std::string::npos)
        << name << " not documented in docs/OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace coolpim::runner
