// Tests for the DRAM bank timing model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "hmc/bank.hpp"

namespace coolpim::hmc {
namespace {

DramTiming timing() { return DramTiming{}; }

TEST(BankTest, ReadTiming) {
  Bank bank{timing()};
  const auto s = bank.schedule(Time::zero(), AccessKind::kRead);
  EXPECT_EQ(s.start, Time::zero());
  // ACT (tRCD) + CAS (tCL) = 27.5 ns to data.
  EXPECT_NEAR(s.complete.as_ns(), 27.5, 0.01);
  // Bank reusable after tRAS + tRP = 41.25 ns.
  EXPECT_NEAR(s.bank_free.as_ns(), 41.25, 0.01);
}

TEST(BankTest, BackToBackAccessesSerialize) {
  Bank bank{timing()};
  const auto a = bank.schedule(Time::zero(), AccessKind::kRead);
  const auto b = bank.schedule(Time::ns(1.0), AccessKind::kRead);
  EXPECT_EQ(b.start, a.bank_free);
  EXPECT_EQ(bank.accesses(), 2u);
}

TEST(BankTest, IdleBankStartsImmediately) {
  Bank bank{timing()};
  (void)bank.schedule(Time::zero(), AccessKind::kRead);
  const auto later = bank.schedule(Time::us(1.0), AccessKind::kWrite);
  EXPECT_EQ(later.start, Time::us(1.0));
}

TEST(BankTest, PimRmwLocksLongerThanRead) {
  Bank read_bank{timing()};
  Bank rmw_bank{timing()};
  const auto rd = read_bank.schedule(Time::zero(), AccessKind::kRead);
  const auto rmw = rmw_bank.schedule(Time::zero(), AccessKind::kPimRmw);
  // RMW holds the bank through read + FU + write-back (paper Section II-B:
  // the DRAM bank is locked during the atomic RMW).
  EXPECT_GT(rmw.bank_free, rd.bank_free);
  EXPECT_GT(rmw.complete, rd.complete);
  // Read-out + 2 ns FU + write CAS = 27.5 + 2 + 13.75 ns.
  EXPECT_NEAR(rmw.complete.as_ns(), 43.25, 0.01);
}

TEST(BankTest, DeratingStretchesTiming) {
  Bank nominal{timing()};
  Bank derated{timing()};
  const auto a = nominal.schedule(Time::zero(), AccessKind::kRead, 1.0);
  const auto b = derated.schedule(Time::zero(), AccessKind::kRead, 0.8);
  EXPECT_NEAR((b.complete - Time::zero()).as_ns(), (a.complete - Time::zero()).as_ns() / 0.8,
              0.01);
}

TEST(BankTest, ZeroScaleThrows) {
  Bank bank{timing()};
  EXPECT_THROW(bank.schedule(Time::zero(), AccessKind::kRead, 0.0), ConfigError);
}

TEST(BankTest, BusyTimeAccumulates) {
  Bank bank{timing()};
  (void)bank.schedule(Time::zero(), AccessKind::kRead);
  (void)bank.schedule(Time::zero(), AccessKind::kRead);
  EXPECT_NEAR(bank.busy_time().as_ns(), 2 * 41.25, 0.01);
}

// Property: throughput of a saturated bank equals 1 access per bank cycle,
// for every access kind and derating level.
struct BankSweep {
  AccessKind kind;
  double scale;
};

class BankThroughput : public ::testing::TestWithParam<BankSweep> {};

TEST_P(BankThroughput, SaturatedRateMatchesCycle) {
  const auto [kind, scale] = GetParam();
  Bank bank{timing()};
  constexpr int kAccesses = 100;
  Time last_free = Time::zero();
  for (int i = 0; i < kAccesses; ++i) {
    last_free = bank.schedule(Time::zero(), kind, scale).bank_free;
  }
  Bank one{timing()};
  const Time single = one.schedule(Time::zero(), kind, scale).bank_free;
  EXPECT_NEAR(last_free.as_ns(), single.as_ns() * kAccesses, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndScales, BankThroughput,
    ::testing::Values(BankSweep{AccessKind::kRead, 1.0}, BankSweep{AccessKind::kWrite, 1.0},
                      BankSweep{AccessKind::kPimRmw, 1.0}, BankSweep{AccessKind::kRead, 0.8},
                      BankSweep{AccessKind::kPimRmw, 0.64}));

}  // namespace
}  // namespace coolpim::hmc
