// Tests for the vault controller model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "hmc/vault.hpp"

namespace coolpim::hmc {
namespace {

TEST(VaultTest, BankCountFromConfig) {
  const HmcConfig cfg = hmc20_config();
  Vault vault{cfg};
  EXPECT_EQ(vault.bank_count(), cfg.banks_per_vault());
  EXPECT_EQ(vault.bank_count(), 16u);
}

TEST(VaultTest, IndependentBanksProceedInParallel) {
  Vault vault{hmc20_config()};
  const Time a = vault.service(Time::zero(), TransactionType::kRead64, 0, 1.0);
  const Time b = vault.service(Time::zero(), TransactionType::kRead64, 1, 1.0);
  // Different banks: both finish at the same (unqueued) time.
  EXPECT_EQ(a, b);
}

TEST(VaultTest, SameBankSerializes) {
  Vault vault{hmc20_config()};
  const Time a = vault.service(Time::zero(), TransactionType::kRead64, 0, 1.0);
  const Time b = vault.service(Time::zero(), TransactionType::kRead64, 0, 1.0);
  EXPECT_GT(b, a);
}

TEST(VaultTest, PimOpsSerializeOnTheFunctionalUnit) {
  Vault vault{hmc20_config()};
  // PIM ops to different banks still share the vault's single FU.
  const Time a = vault.service(Time::zero(), TransactionType::kPimNoReturn, 0, 1.0);
  const Time b = vault.service(Time::zero(), TransactionType::kPimNoReturn, 1, 1.0);
  EXPECT_GT(b, a);
  EXPECT_EQ(vault.stats().counter_value("pim_ops"), 2u);
}

TEST(VaultTest, StatsTrackKinds) {
  Vault vault{hmc20_config()};
  (void)vault.service(Time::zero(), TransactionType::kRead64, 0, 1.0);
  (void)vault.service(Time::zero(), TransactionType::kWrite64, 1, 1.0);
  (void)vault.service(Time::zero(), TransactionType::kPimWithReturn, 2, 1.0);
  EXPECT_EQ(vault.stats().counter_value("reads"), 1u);
  EXPECT_EQ(vault.stats().counter_value("writes"), 1u);
  EXPECT_EQ(vault.stats().counter_value("pim_ops"), 1u);
}

TEST(VaultTest, QueueWaitRecorded) {
  Vault vault{hmc20_config()};
  for (int i = 0; i < 10; ++i) {
    (void)vault.service(Time::zero(), TransactionType::kRead64, 0, 1.0);
  }
  const auto& wait = vault.stats().summaries().at("queue_wait_ns");
  EXPECT_EQ(wait.count(), 10u);
  EXPECT_GT(wait.max(), 0.0);
  EXPECT_DOUBLE_EQ(wait.min(), 0.0);  // the first access did not wait
}

TEST(VaultTest, InvalidBankIndexAsserts) {
  Vault vault{hmc20_config()};
  EXPECT_THROW(vault.service(Time::zero(), TransactionType::kRead64, 999, 1.0), SimError);
}

}  // namespace
}  // namespace coolpim::hmc
