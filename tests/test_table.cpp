// Tests for the console table renderer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"

namespace coolpim {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t{"Demo"};
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAligned) {
  Table t{"Align"};
  t.header({"a", "bbbb"});
  t.row({"xxxxxx", "1"});
  const std::string out = t.to_string();
  // Both the header row and the data row should have a pipe after the widest
  // cell of each column; check all lines have the same length.
  std::size_t len = 0;
  std::size_t start = 0;
  bool first = true;
  while (start < out.size()) {
    auto end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const auto line = out.substr(start, end - start);
    if (!line.empty() && line[0] == '|') {
      if (first) {
        len = line.size();
        first = false;
      } else {
        EXPECT_EQ(line.size(), len);
      }
    }
    start = end + 1;
  }
  EXPECT_FALSE(first);
}

TEST(TableTest, MismatchedRowThrows) {
  Table t{"Bad"};
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ConfigError);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(1.2345, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(AsciiBarTest, Scaling) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(ascii_bar(10.0, 10.0, 4), "####");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 4), "    ");
  EXPECT_EQ(ascii_bar(20.0, 10.0, 4), "####");  // clamps
  EXPECT_TRUE(ascii_bar(1.0, 0.0, 4).empty());
}

}  // namespace
}  // namespace coolpim
