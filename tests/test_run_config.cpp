// Tests for sys::RunConfig: the unified COOLPIM_* / --flag run configuration
// with precedence CLI > environment > default, argv stripping, validation,
// and the SystemConfig / WorkloadSet hand-offs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sys/run_config.hpp"
#include "sys/system.hpp"

namespace coolpim::sys {
namespace {

/// Mutable argv for from_args tests; keeps the strings alive.
struct Args {
  explicit Args(std::vector<std::string> words) : strings{std::move(words)} {
    strings.insert(strings.begin(), "prog");
    for (auto& s : strings) argv.push_back(s.data());
    argv.push_back(nullptr);
    argc = static_cast<int>(strings.size());
  }
  std::vector<std::string> strings;
  std::vector<char*> argv;
  int argc{0};

  [[nodiscard]] std::vector<std::string> remaining() const {
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) out.emplace_back(argv[i]);
    return out;
  }
};

/// Scoped environment variable; unset on destruction.
struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_{name} {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  const char* name_;
};

TEST(RunConfigTest, Defaults) {
  RunConfig rc;
  EXPECT_EQ(rc.jobs, 0u);
  EXPECT_EQ(rc.scale, 18u);
  EXPECT_EQ(rc.graph_seed, 1u);
  EXPECT_TRUE(rc.trace_path.empty());
  EXPECT_FALSE(rc.fault.enabled());
  rc.validate();
}

TEST(RunConfigTest, FromEnvOverlaysOntoBase) {
  ScopedEnv scale{"COOLPIM_SCALE", "12"};
  ScopedEnv jobs{"COOLPIM_JOBS", "3"};
  ScopedEnv drop{"COOLPIM_FAULT_DROP", "0.25"};
  RunConfig base;
  base.graph_seed = 7;  // not in the environment: survives the overlay
  const RunConfig rc = RunConfig::from_env(base);
  EXPECT_EQ(rc.scale, 12u);
  EXPECT_EQ(rc.jobs, 3u);
  EXPECT_EQ(rc.graph_seed, 7u);
  EXPECT_DOUBLE_EQ(rc.fault.warning_drop_rate, 0.25);
  EXPECT_TRUE(rc.fault.enabled());
}

TEST(RunConfigTest, FromArgsConsumesOnlyRecognizedFlags) {
  Args args{{"--workload", "dc", "--scale", "10", "--fault-noise-c", "0.5",
             "--timeline"}};
  const RunConfig rc = RunConfig::from_args(&args.argc, args.argv.data());
  EXPECT_EQ(rc.scale, 10u);
  EXPECT_DOUBLE_EQ(rc.fault.sensor_noise_sigma_c, 0.5);
  // App-specific flags pass through in order; argv stays null-terminated.
  EXPECT_EQ(args.remaining(),
            (std::vector<std::string>{"--workload", "dc", "--timeline"}));
  EXPECT_EQ(args.argv[args.argc], nullptr);
}

TEST(RunConfigTest, FlagEqualsValueForm) {
  Args args{{"--scale=9", "--fault-drop=0.75", "--trace=/tmp/t.json"}};
  const RunConfig rc = RunConfig::from_args(&args.argc, args.argv.data());
  EXPECT_EQ(rc.scale, 9u);
  EXPECT_DOUBLE_EQ(rc.fault.warning_drop_rate, 0.75);
  EXPECT_EQ(rc.trace_path, "/tmp/t.json");
  EXPECT_TRUE(args.remaining().empty());
}

TEST(RunConfigTest, CliWinsOverEnvironment) {
  ScopedEnv scale{"COOLPIM_SCALE", "12"};
  ScopedEnv seed{"COOLPIM_GRAPH_SEED", "5"};
  Args args{{"--scale", "16"}};
  const RunConfig rc = RunConfig::resolve(&args.argc, args.argv.data());
  EXPECT_EQ(rc.scale, 16u);     // CLI over env
  EXPECT_EQ(rc.graph_seed, 5u);  // env over default
}

TEST(RunConfigTest, MalformedValuesThrow) {
  {
    Args args{{"--scale", "abc"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--fault-drop", "not-a-rate"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--fault-watchdog", "maybe"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--jobs"}};  // missing value
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
}

TEST(RunConfigTest, ValidationRejectsOutOfRange) {
  {
    Args args{{"--scale", "30"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--fault-drop", "1.5"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  ScopedEnv scale{"COOLPIM_SCALE", "4"};
  EXPECT_THROW((void)RunConfig::from_env(), ConfigError);
}

TEST(RunConfigTest, BoolKnobs) {
  Args args{{"--fault-watchdog", "off", "--fault-enable", "1"}};
  const RunConfig rc = RunConfig::from_args(&args.argc, args.argv.data());
  EXPECT_FALSE(rc.fault.watchdog.enabled);
  EXPECT_TRUE(rc.fault.force_enable);
  EXPECT_TRUE(rc.fault.enabled());  // force_enable alone turns the layer on
}

TEST(RunConfigTest, ApplyToCopiesOnlyTheFaultEnvironment) {
  RunConfig rc;
  rc.scale = 10;  // not a SystemConfig field: must not leak anywhere
  rc.fault.warning_drop_rate = 0.5;
  SystemConfig cfg;
  const SystemConfig before = cfg;
  rc.apply_to(cfg);
  EXPECT_DOUBLE_EQ(cfg.fault.warning_drop_rate, 0.5);
  // Nothing but the fault environment is RunConfig's to set.
  EXPECT_EQ(cfg.scenario, before.scenario);
  EXPECT_EQ(cfg.epoch, before.epoch);
  EXPECT_EQ(cfg.warm_start, before.warm_start);
  EXPECT_EQ(cfg.run_seed, before.run_seed);
}

TEST(RunConfigTest, ApplyToIsNoOpWhenFaultFree) {
  RunConfig rc;
  SystemConfig cfg;
  const SystemConfig before = cfg;
  rc.apply_to(cfg);
  EXPECT_EQ(cfg.fault, before.fault);
  EXPECT_FALSE(cfg.fault.enabled());
}

TEST(RunConfigTest, BuildOptionsCarryJobsAndCacheDir) {
  RunConfig rc;
  rc.jobs = 4;
  rc.profile_cache_dir = "/tmp/cache";
  const auto opt = rc.build_options();
  EXPECT_EQ(opt.jobs, 4u);
  EXPECT_EQ(opt.cache_dir, "/tmp/cache");
}

TEST(RunConfigTest, FlagsHelpMentionsEveryFlag) {
  const std::string help = RunConfig::flags_help();
  for (const char* flag :
       {"--jobs", "--scale", "--graph-seed", "--trace", "--counters",
        "--profile-cache", "--policy", "--policy-table", "--fleet-nodes",
        "--arrival-rate", "--balancer", "--fault-drop", "--fault-corrupt",
        "--fault-spurious", "--fault-delay-us", "--fault-noise-c", "--fault-quant-c",
        "--fault-stuck", "--fault-outage", "--fault-watchdog", "--fault-enable",
        "--hmc-backend"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag << " missing from help";
  }
}

TEST(RunConfigTest, FleetKnobDefaults) {
  const RunConfig rc;
  EXPECT_EQ(rc.fleet_nodes, 8u);
  EXPECT_DOUBLE_EQ(rc.arrival_rate, 4000.0);
  EXPECT_EQ(rc.balancer, "thermal-aware");
}

TEST(RunConfigTest, FleetKnobsResolveFromCliAndEnvironment) {
  ScopedEnv nodes{"COOLPIM_FLEET_NODES", "16"};
  ScopedEnv balancer{"COOLPIM_BALANCER", "round-robin"};
  Args args{{"--arrival-rate", "2500.5", "--balancer", "join-shortest-queue"}};
  const RunConfig rc = RunConfig::resolve(&args.argc, args.argv.data());
  EXPECT_EQ(rc.fleet_nodes, 16u);                    // env over default
  EXPECT_DOUBLE_EQ(rc.arrival_rate, 2500.5);         // CLI over default
  EXPECT_EQ(rc.balancer, "join-shortest-queue");     // CLI over env
  EXPECT_TRUE(args.remaining().empty());
}

TEST(RunConfigTest, FleetKnobValidation) {
  {
    Args args{{"--fleet-nodes", "0"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--fleet-nodes", "5000"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--arrival-rate", "0"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--balancer", ""}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  // The balancer *vocabulary* is validated by the fleet layer, not sys::
  // (layering: sys must not link fleet) -- any non-empty name passes here.
  Args args{{"--balancer", "not-yet-registered"}};
  const RunConfig rc = RunConfig::from_args(&args.argc, args.argv.data());
  EXPECT_EQ(rc.balancer, "not-yet-registered");
}

TEST(RunConfigTest, HmcBackendDefaultsToTheEpochTier) {
  const RunConfig rc;
  EXPECT_TRUE(rc.hmc_backend.empty());
  SystemConfig cfg;
  rc.apply_to(cfg);
  EXPECT_EQ(cfg.backend, hmc::BackendKind::kEpochThroughput);
}

TEST(RunConfigTest, HmcBackendResolvesFromCliAndEnvironment) {
  ScopedEnv env{"COOLPIM_HMC_BACKEND", "event-detailed"};
  {
    // Environment over default.
    const RunConfig rc = RunConfig::from_env();
    EXPECT_EQ(rc.hmc_backend, "event-detailed");
    SystemConfig cfg;
    rc.apply_to(cfg);
    EXPECT_EQ(cfg.backend, hmc::BackendKind::kEventDetailed);
  }
  // CLI over environment; both flag forms work.
  Args args{{"--hmc-backend", "pim-vault"}};
  const RunConfig rc = RunConfig::resolve(&args.argc, args.argv.data());
  EXPECT_EQ(rc.hmc_backend, "pim-vault");
  SystemConfig cfg;
  rc.apply_to(cfg);
  EXPECT_EQ(cfg.backend, hmc::BackendKind::kPimVault);
  EXPECT_TRUE(args.remaining().empty());

  Args eq{{"--hmc-backend=epoch-throughput"}};
  const RunConfig rc2 = RunConfig::from_args(&eq.argc, eq.argv.data());
  EXPECT_EQ(rc2.hmc_backend, "epoch-throughput");
}

TEST(RunConfigTest, HmcBackendUnknownNameFailsListingTheRegistry) {
  Args args{{"--hmc-backend", "warp-speed"}};
  try {
    (void)RunConfig::from_args(&args.argc, args.argv.data());
    FAIL() << "unknown backend name accepted";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-speed"), std::string::npos);
    // The message lists the registered vocabulary so the fix is obvious.
    for (const char* name : {"epoch-throughput", "event-detailed", "pim-vault"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name << " not in: " << what;
    }
  }
}

TEST(RunConfigTest, ThermalBatchKnobDefaults) {
  const RunConfig rc;
  EXPECT_EQ(rc.thermal_batch, 8u);
  EXPECT_EQ(rc.stack_layers, 0u);
}

TEST(RunConfigTest, ThermalBatchKnobsResolveFromCliAndEnvironment) {
  ScopedEnv batch{"COOLPIM_THERMAL_BATCH", "64"};
  ScopedEnv layers{"COOLPIM_STACK_LAYERS", "4"};
  {
    // Environment over defaults.
    const RunConfig rc = RunConfig::from_env();
    EXPECT_EQ(rc.thermal_batch, 64u);
    EXPECT_EQ(rc.stack_layers, 4u);
  }
  // CLI over environment.
  Args args{{"--thermal-batch", "16", "--stack-layers=16", "keep-me"}};
  const RunConfig rc = RunConfig::resolve(&args.argc, args.argv.data());
  EXPECT_EQ(rc.thermal_batch, 16u);
  EXPECT_EQ(rc.stack_layers, 16u);
  EXPECT_EQ(args.remaining(), std::vector<std::string>{"keep-me"});
}

TEST(RunConfigTest, ThermalBatchKnobValidation) {
  {
    Args args{{"--thermal-batch", "0"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--thermal-batch", "5000"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--stack-layers", "65"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
  {
    Args args{{"--thermal-batch", "eight"}};
    EXPECT_THROW((void)RunConfig::from_args(&args.argc, args.argv.data()), ConfigError);
  }
}

}  // namespace
}  // namespace coolpim::sys
