// Tests for the SW-DynT and HW-DynT throttling controllers, the BW-Throttle
// baseline, origin-aware warning coalescing and the watchdog degrade steps.
#include <gtest/gtest.h>

#include "core/bw_throttle.hpp"
#include "control/baselines.hpp"
#include "core/hw_dynt.hpp"
#include "core/sw_dynt.hpp"

namespace coolpim::core {
namespace {

SwDynTConfig sw_config(std::uint32_t pool) {
  SwDynTConfig cfg;
  cfg.use_static_init = false;
  cfg.eq1.max_blocks = pool;
  return cfg;
}

TEST(NaiveControllerTest, AlwaysGrants) {
  control::NaivePolicy c;
  EXPECT_TRUE(c.acquire_block(Time::zero()));
  EXPECT_DOUBLE_EQ(c.pim_warp_fraction(Time::zero()), 1.0);
  c.on_thermal_warning(Time::ms(1));
  EXPECT_TRUE(c.acquire_block(Time::ms(1)));  // warnings ignored
  EXPECT_EQ(c.warnings_seen(), 1u);
  EXPECT_EQ(c.adjustments(), 0u);
}

TEST(NonOffloadingControllerTest, NeverGrants) {
  control::NonOffloadingPolicy c;
  EXPECT_FALSE(c.acquire_block(Time::zero()));
  EXPECT_DOUBLE_EQ(c.pim_warp_fraction(Time::zero()), 0.0);
}

TEST(SwDynTTest, StaticInitializationUsesEq1) {
  SwDynTConfig cfg;
  cfg.eq1.max_blocks = 128;
  cfg.eq1.estimated_naive_rate_op_per_ns = 2.6;
  cfg.eq1.target_rate_op_per_ns = 1.3;
  cfg.eq1.margin_blocks = 4;
  SwDynT sw{cfg};
  EXPECT_EQ(sw.initial_pool_size(), 68u);
  EXPECT_EQ(sw.pool().size(), 68u);
}

TEST(SwDynTTest, ShrinksAfterThrottleDelay) {
  auto cfg = sw_config(16);
  cfg.control_factor = 4;
  cfg.throttle_delay = Time::us(100);
  SwDynT sw{cfg};
  // Fill some tokens so the min(issued) clamp is not the limiter.
  for (int i = 0; i < 14; ++i) ASSERT_TRUE(sw.acquire_block(Time::zero()));
  sw.on_thermal_warning(Time::ms(1));
  // Before the interrupt completes the pool is unchanged.
  EXPECT_TRUE(sw.acquire_block(Time::ms(1)));
  EXPECT_EQ(sw.pool().size(), 16u);
  // After T_throttle the reduction is applied on the next runtime action.
  EXPECT_FALSE(sw.acquire_block(Time::ms(1.2)));
  EXPECT_EQ(sw.pool().size(), 12u);
  EXPECT_EQ(sw.reductions_applied(), 1u);
}

TEST(SwDynTTest, WarningsCoalescedWithinUpdateInterval) {
  auto cfg = sw_config(32);
  cfg.control_factor = 4;
  cfg.throttle_delay = Time::us(1);
  cfg.update_interval = Time::ms(1);
  SwDynT sw{cfg};
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(sw.acquire_block(Time::zero()));
  sw.on_thermal_warning(Time::us(10));
  sw.on_thermal_warning(Time::us(20));   // same excursion: coalesced
  sw.on_thermal_warning(Time::us(900));  // still within the interval
  (void)sw.acquire_block(Time::ms(0.95));
  EXPECT_EQ(sw.reductions_applied(), 1u);
  EXPECT_EQ(sw.warnings_received(), 3u);
  sw.on_thermal_warning(Time::ms(2));  // new interval
  (void)sw.acquire_block(Time::ms(2.5));
  EXPECT_EQ(sw.reductions_applied(), 2u);
}

TEST(SwDynTTest, ShadowLaunchesCounted) {
  SwDynT sw{sw_config(1)};
  EXPECT_TRUE(sw.acquire_block(Time::zero()));
  EXPECT_FALSE(sw.acquire_block(Time::zero()));
  EXPECT_EQ(sw.shadow_launches(), 1u);
}

TEST(HwDynTTest, StartsAtMaximum) {
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 64;
  HwDynT hw{cfg};
  EXPECT_EQ(hw.enabled_warps(), 64u);
  EXPECT_DOUBLE_EQ(hw.pim_warp_fraction(Time::zero()), 1.0);
  EXPECT_TRUE(hw.acquire_block(Time::zero()));  // block granularity unused
}

TEST(HwDynTTest, ReductionVisibleAfterPcuDelay) {
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 64;
  cfg.control_factor = 8;
  cfg.throttle_delay = Time::us(0.1);
  HwDynT hw{cfg};
  hw.on_thermal_warning(Time::ms(1));
  // Immediately before the PCU update latency elapses: old fraction.
  EXPECT_DOUBLE_EQ(hw.pim_warp_fraction(Time::ms(1)), 1.0);
  // Just after: reduced.
  EXPECT_NEAR(hw.pim_warp_fraction(Time::ms(1.001)), 56.0 / 64.0, 1e-12);
  EXPECT_EQ(hw.reductions_applied(), 1u);
}

TEST(HwDynTTest, DelayedControlUpdates) {
  // Paper Section IV-C: updates are deliberately delayed until the HMC
  // temperature settles, preventing over-reduction during the transient.
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 64;
  cfg.control_factor = 8;
  cfg.settle_window = Time::ms(1);
  HwDynT hw{cfg};
  hw.on_thermal_warning(Time::us(100));
  hw.on_thermal_warning(Time::us(200));  // inside the settle window: ignored
  hw.on_thermal_warning(Time::us(900));
  EXPECT_EQ(hw.enabled_warps(), 56u);
  hw.on_thermal_warning(Time::ms(1.2));  // settled: accepted
  EXPECT_EQ(hw.enabled_warps(), 48u);
  EXPECT_EQ(hw.adjustments(), 2u);
}

TEST(HwDynTTest, FloorsAtZeroWarps) {
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 8;
  cfg.control_factor = 8;
  cfg.settle_window = Time::us(1);
  HwDynT hw{cfg};
  hw.on_thermal_warning(Time::ms(1));
  hw.on_thermal_warning(Time::ms(2));
  EXPECT_EQ(hw.enabled_warps(), 0u);
  EXPECT_DOUBLE_EQ(hw.pim_warp_fraction(Time::ms(3)), 0.0);
}

TEST(ControllerContractTest, ThrottleDelaysOrdered) {
  // HW reacts orders of magnitude faster than SW (paper Fig. 8).
  SwDynT sw{sw_config(8)};
  HwDynT hw{HwDynTConfig{}};
  EXPECT_GT(sw.throttle_delay(), hw.throttle_delay() * 100);
}

// ---- Origin-aware coalescing ------------------------------------------------
// A warning delayed in flight (fault layer) arrives with raised_at < now.
// Coalescing keys on raised_at: a late duplicate of an already-handled
// excursion must not shrink again, however late it is delivered.

TEST(SwDynTTest, StaleDelayedWarningStaysCoalesced) {
  SwDynTConfig cfg = sw_config(64);
  cfg.control_factor = 4;
  cfg.update_interval = Time::ms(2.5);
  cfg.throttle_delay = Time::zero();
  SwDynT sw{cfg};
  // Issue the whole pool so min(PTP - CF, #issued) is not clamped by issuance.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(sw.acquire_block(Time::zero()));
  sw.on_thermal_warning(Time::ms(1), Time::ms(1));
  (void)sw.acquire_block(Time::ms(1));  // applies the pending shrink
  EXPECT_EQ(sw.pool().size(), 60u);
  // Delivered far outside the update interval, but *raised* inside it:
  // the same excursion, already handled.
  sw.on_thermal_warning(Time::ms(6), Time::ms(1.5));
  (void)sw.acquire_block(Time::ms(6));
  EXPECT_EQ(sw.pool().size(), 60u);
  // A genuinely new excursion (fresh raise time) shrinks again.
  sw.on_thermal_warning(Time::ms(6.5), Time::ms(6.5));
  (void)sw.acquire_block(Time::ms(6.5));
  EXPECT_EQ(sw.pool().size(), 56u);
}

TEST(HwDynTTest, StaleDelayedWarningStaysCoalesced) {
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 64;
  cfg.control_factor = 8;
  cfg.settle_window = Time::ms(2.5);
  HwDynT hw{cfg};
  hw.on_thermal_warning(Time::ms(1), Time::ms(1));
  EXPECT_EQ(hw.enabled_warps(), 56u);
  hw.on_thermal_warning(Time::ms(6), Time::ms(2));  // stale duplicate
  EXPECT_EQ(hw.enabled_warps(), 56u);
  hw.on_thermal_warning(Time::ms(6), Time::ms(6));  // new excursion
  EXPECT_EQ(hw.enabled_warps(), 48u);
}

TEST(BwThrottleTest, ReducesOnWarningWithFloorAndCoalescing) {
  BwThrottleConfig cfg;
  cfg.reduction_step = 0.5;
  cfg.floor = 0.2;
  cfg.settle_window = Time::ms(2.5);
  BwThrottleController bw{cfg};
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 1.0);
  bw.on_thermal_warning(Time::ms(1), Time::ms(1));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.5);
  bw.on_thermal_warning(Time::ms(7), Time::ms(2));  // stale: coalesced
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.5);
  bw.on_thermal_warning(Time::ms(7), Time::ms(7));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.25);
  bw.on_thermal_warning(Time::ms(20), Time::ms(20));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.2);  // floored
  EXPECT_EQ(bw.adjustments(), 3u);
}

// ---- Watchdog degrade steps -------------------------------------------------
// With the warning channel silent the watchdog forces a conservative halving
// step, bypassing the coalescing window (there is no feedback to over-count).

TEST(SwDynTTest, WatchdogEngageHalvesPool) {
  SwDynTConfig cfg = sw_config(64);
  cfg.control_factor = 4;
  SwDynT sw{cfg};
  // Issue the whole pool so min(PTP - step, #issued) is not clamped.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(sw.acquire_block(Time::zero()));
  sw.on_watchdog_engage(Time::ms(1));
  EXPECT_EQ(sw.pool().size(), 32u);  // immediate, no interrupt latency
  sw.on_watchdog_engage(Time::ms(2));
  EXPECT_EQ(sw.pool().size(), 16u);
  // Near the bottom the step floors at the control factor.
  sw.on_watchdog_engage(Time::ms(3));
  sw.on_watchdog_engage(Time::ms(4));
  EXPECT_EQ(sw.pool().size(), 4u);
  EXPECT_EQ(sw.adjustments(), 4u);
}

TEST(HwDynTTest, WatchdogEngageHalvesWarps) {
  HwDynTConfig cfg;
  cfg.max_warps_per_sm = 64;
  cfg.control_factor = 8;
  cfg.throttle_delay = Time::us(0.1);
  HwDynT hw{cfg};
  hw.on_watchdog_engage(Time::ms(1));
  EXPECT_EQ(hw.enabled_warps(), 32u);
  // PCU latency still applies: the old fraction is visible until then.
  EXPECT_DOUBLE_EQ(hw.pim_warp_fraction(Time::ms(1)), 1.0);
  EXPECT_NEAR(hw.pim_warp_fraction(Time::ms(1.001)), 0.5, 1e-12);
  hw.on_watchdog_engage(Time::ms(2));
  EXPECT_EQ(hw.enabled_warps(), 16u);
  hw.on_watchdog_engage(Time::ms(3));
  EXPECT_EQ(hw.enabled_warps(), 8u);  // step floors at control_factor
  EXPECT_EQ(hw.adjustments(), 3u);
}

TEST(BwThrottleTest, WatchdogEngageHalvesAdmittedFraction) {
  BwThrottleConfig cfg;
  cfg.floor = 0.2;
  BwThrottleController bw{cfg};
  bw.on_watchdog_engage(Time::ms(1));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.5);
  bw.on_watchdog_engage(Time::ms(2));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.25);
  bw.on_watchdog_engage(Time::ms(3));
  EXPECT_DOUBLE_EQ(bw.admit_fraction(), 0.2);  // floored
}

TEST(ControllerContractTest, DefaultWatchdogEngageActsAsWarning) {
  // Controllers without a dedicated degrade step fall back to treating the
  // engagement as a warning raised now.
  control::NaivePolicy naive;
  naive.on_watchdog_engage(Time::ms(1));
  EXPECT_EQ(naive.warnings_seen(), 1u);
}

}  // namespace
}  // namespace coolpim::core
