// Unit tests for the strongly-typed quantity layer.
#include <gtest/gtest.h>

#include "common/units.hpp"

namespace coolpim {
namespace {

TEST(TimeTest, ConstructionAndConversion) {
  EXPECT_EQ(Time::ns(1.0).as_ps(), 1000);
  EXPECT_DOUBLE_EQ(Time::us(2.5).as_ns(), 2500.0);
  EXPECT_DOUBLE_EQ(Time::ms(1.0).as_us(), 1000.0);
  EXPECT_DOUBLE_EQ(Time::sec(1.0).as_ms(), 1000.0);
  EXPECT_EQ(Time::zero().as_ps(), 0);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::ns(100);
  const Time b = Time::ns(50);
  EXPECT_EQ((a + b).as_ps(), 150000);
  EXPECT_EQ((a - b).as_ps(), 50000);
  EXPECT_EQ((a * 3).as_ps(), 300000);
  EXPECT_EQ((3 * a).as_ps(), 300000);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_EQ((a / 4).as_ps(), 25000);
  EXPECT_EQ((a * 0.5).as_ps(), 50000);
}

TEST(TimeTest, Comparison) {
  EXPECT_LT(Time::ns(1), Time::ns(2));
  EXPECT_EQ(Time::us(1), Time::ns(1000));
  EXPECT_GT(Time::max(), Time::sec(1e6));
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::ns(10);
  t += Time::ns(5);
  EXPECT_EQ(t, Time::ns(15));
  t -= Time::ns(10);
  EXPECT_EQ(t, Time::ns(5));
}

TEST(FrequencyTest, PeriodRoundTrip) {
  const Frequency f = Frequency::ghz(1.4);
  EXPECT_DOUBLE_EQ(f.as_ghz(), 1.4);
  EXPECT_NEAR(f.period().as_ps(), 714.0, 1.0);
  EXPECT_DOUBLE_EQ(Frequency::mhz(500).as_hz(), 5e8);
}

TEST(CelsiusTest, KelvinConversion) {
  EXPECT_DOUBLE_EQ(Celsius{0.0}.as_kelvin(), 273.15);
  EXPECT_DOUBLE_EQ(Celsius::from_kelvin(373.15).value(), 100.0);
  EXPECT_DOUBLE_EQ(Celsius{85.0} - Celsius{25.0}, 60.0);
  EXPECT_DOUBLE_EQ((Celsius{85.0} + 10.0).value(), 95.0);
  EXPECT_DOUBLE_EQ((Celsius{85.0} - 10.0).value(), 75.0);
  EXPECT_LT(Celsius{25.0}, Celsius{85.0});
}

TEST(PowerEnergyTest, CrossDomainOps) {
  const Watts p{10.0};
  const Time t = Time::ms(100);
  const Joules e = p * t;
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
  EXPECT_DOUBLE_EQ((e / t).value(), 10.0);
  EXPECT_DOUBLE_EQ((t * p).value(), 1.0);
  EXPECT_DOUBLE_EQ(Joules::pj(3.7).as_pj(), 3.7);
}

TEST(PowerTest, Arithmetic) {
  Watts a{5.0};
  a += Watts{2.0};
  EXPECT_DOUBLE_EQ(a.value(), 7.0);
  EXPECT_DOUBLE_EQ((Watts{8.0} - Watts{3.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ((Watts{4.0} * 2.5).value(), 10.0);
  EXPECT_DOUBLE_EQ(Watts{10.0} / Watts{4.0}, 2.5);
}

TEST(BandwidthTest, Conversions) {
  const Bandwidth bw = Bandwidth::gbps(320.0);
  EXPECT_DOUBLE_EQ(bw.as_gbps(), 320.0);
  EXPECT_DOUBLE_EQ(bw.as_bytes_per_sec(), 320e9);
  EXPECT_DOUBLE_EQ(bw.bits_per_sec(), 2560e9);
  EXPECT_DOUBLE_EQ(bw.bytes_in(Time::ms(1.0)), 320e6);
}

TEST(BandwidthTest, Arithmetic) {
  const Bandwidth a = Bandwidth::gbps(100);
  const Bandwidth b = Bandwidth::gbps(60);
  EXPECT_DOUBLE_EQ((a + b).as_gbps(), 160.0);
  EXPECT_DOUBLE_EQ((a - b).as_gbps(), 40.0);
  EXPECT_DOUBLE_EQ((a * 0.5).as_gbps(), 50.0);
  EXPECT_DOUBLE_EQ(a / b, 100.0 / 60.0);
}

TEST(ThermalResistanceTest, Rise) {
  const ThermalResistance r{0.5};
  EXPECT_DOUBLE_EQ(r.rise(Watts{40.0}), 20.0);
  EXPECT_LT(ThermalResistance{0.2}, ThermalResistance{4.0});
}

// Property sweep: time conversions are self-consistent across magnitudes.
class TimeRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TimeRoundTrip, NsRoundTrip) {
  const double ns = GetParam();
  EXPECT_NEAR(Time::ns(ns).as_ns(), ns, 1e-3);
  EXPECT_NEAR(Time::us(ns).as_us(), ns, 1e-6);
  EXPECT_NEAR(Time::ms(ns).as_ms(), ns, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, TimeRoundTrip,
                         ::testing::Values(0.001, 0.5, 1.0, 13.75, 27.5, 100.0, 12345.678));

}  // namespace
}  // namespace coolpim
