// Batched thermal solver contract tests (DESIGN.md section 13,
// docs/PERFORMANCE.md section 7):
//  * every explicit lane is bit-identical to a scalar StackModel driven with
//    the same spec/ambient/power via step_reference(), at any batch width,
//  * lane order is irrelevant (permutation invariance),
//  * step() performs no heap allocation after construction, including the
//    ADI refactorization when the substep length changes,
//  * substeps_for() fails loudly (ConfigError) when the explicit stable dt
//    collapses instead of silently looping millions of substeps,
//  * the ADI kernel matches a tight-dt explicit reference within the
//    documented tolerance on the 16-high HBM geometry where dt is >= 10x the
//    explicit stable step,
//  * runner::run_batch_thermal returns identical results for any batch/jobs,
//  * the documented contracts stay pinned to the prose.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/counters.hpp"
#include "obs/names.hpp"
#include "runner/thermal_batch.hpp"
#include "thermal/batch_stack_model.hpp"
#include "thermal/stack_model.hpp"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_live_allocs{0};

}  // namespace

// Counting allocator (same pattern as test_thermal_kernel): every
// operator-new form funnels through here; counts are read around the calls
// under test.
void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace coolpim::thermal {
namespace {

std::uint64_t allocations() { return g_live_allocs.load(std::memory_order_relaxed); }

/// Randomized but physically valid stack (mirrors test_thermal_kernel).
StackSpec random_spec(Rng& rng) {
  StackSpec spec;
  spec.floorplan.vaults_x = 1;
  spec.floorplan.vaults_y = 1;
  spec.floorplan.grid.nx = static_cast<std::size_t>(rng.next_in(1, 16));
  spec.floorplan.grid.ny = static_cast<std::size_t>(rng.next_in(1, 10));
  spec.floorplan.die_width_m = 2e-3 + 10e-3 * rng.next_double();
  spec.floorplan.die_height_m = 2e-3 + 10e-3 * rng.next_double();
  const auto n_layers = static_cast<std::size_t>(rng.next_in(1, 5));
  for (std::size_t l = 0; l < n_layers; ++l) {
    LayerSpec layer;
    layer.name = "L" + std::to_string(l);
    layer.thickness_m = 20e-6 + 80e-6 * rng.next_double();
    layer.conductivity = 30.0 + 200.0 * rng.next_double();
    layer.volumetric_heat_capacity = 1e6 + 2e6 * rng.next_double();
    layer.interface_r_above = 1e-6 + 2e-5 * rng.next_double();
    spec.layers.push_back(layer);
  }
  spec.tim_r = 2e-6 + 2e-5 * rng.next_double();
  spec.sink_r = ThermalResistance{0.1 + 2.0 * rng.next_double()};
  spec.sink_heat_capacity = 0.005 + 10.0 * rng.next_double();
  spec.board_r = 5.0 + 40.0 * rng.next_double();
  spec.co_heater_watts = rng.next_bool(0.3) ? 5.0 * rng.next_double() : 0.0;
  return spec;
}

/// Random per-layer power maps for one lane/model.
std::vector<PowerMap> random_power(const StackSpec& spec, Rng& rng) {
  std::vector<PowerMap> maps;
  const std::size_t n_cells = spec.floorplan.grid.cells();
  for (std::size_t l = 0; l < spec.layers.size(); ++l) {
    PowerMap pm{spec.floorplan.grid};
    const double layer_watts = 8.0 * rng.next_double();
    for (std::size_t c = 0; c < n_cells; ++c) {
      pm.add(c, layer_watts * rng.next_double() / static_cast<double>(n_cells));
    }
    maps.push_back(pm);
  }
  return maps;
}

void expect_lane_matches_scalar(const BatchStackModel& batch, std::size_t lane,
                                const StackModel& ref) {
  for (std::size_t l = 0; l < ref.layer_count(); ++l) {
    for (std::size_t c = 0; c < ref.cells_per_layer(); ++c) {
      // EXPECT_EQ on doubles: exact bit-for-bit agreement, not a tolerance.
      ASSERT_EQ(batch.cell_temp(lane, l, c).value(), ref.cell_temp(l, c).value())
          << "lane " << lane << " layer " << l << " cell " << c;
    }
    ASSERT_EQ(batch.layer_peak(lane, l).value(), ref.layer_peak(l).value());
    ASSERT_EQ(batch.layer_mean(lane, l).value(), ref.layer_mean(l).value());
  }
  ASSERT_EQ(batch.sink_temp(lane).value(), ref.sink_temp().value());
}

TEST(BatchThermal, PerLaneBitIdenticalToScalarReferenceOnRandomStacks) {
  Rng rng{0xbeef'cafe'0001ULL};
  for (int trial = 0; trial < 8; ++trial) {
    const StackSpec spec = random_spec(rng);
    const std::size_t lanes = static_cast<std::size_t>(rng.next_in(1, 6));
    BatchStackModel batch{spec, lanes};

    // Scalar twins: one StackModel per lane, each with the lane's own
    // ambient (exercising the per-lane ambient path) and power.
    std::vector<StackModel> refs;
    refs.reserve(lanes);
    std::vector<std::vector<PowerMap>> powers;
    for (std::size_t v = 0; v < lanes; ++v) {
      StackSpec lane_spec = spec;
      lane_spec.ambient = Celsius{20.0 + 5.0 * static_cast<double>(v)};
      refs.emplace_back(lane_spec);
      batch.set_lane_ambient(v, lane_spec.ambient);
      powers.push_back(random_power(spec, rng));
      for (std::size_t l = 0; l < spec.layers.size(); ++l) {
        refs.back().set_layer_power(l, powers.back()[l]);
        batch.set_layer_power(v, l, powers.back()[l]);
      }
    }
    batch.reset_to_ambient();  // pick up the per-lane ambients

    const Time strides[] = {batch.stable_step(), Time::us(10.0), Time::us(3.3),
                            Time::us(50.0)};
    for (const Time dt : strides) {
      for (int s = 0; s < 3; ++s) {
        batch.step(dt);
        for (auto& ref : refs) ref.step_reference(dt);
      }
      for (std::size_t v = 0; v < lanes; ++v) expect_lane_matches_scalar(batch, v, refs[v]);
    }
  }
}

TEST(BatchThermal, LanePermutationAndBatchWidthInvariance) {
  Rng rng{0x5eed'0002ULL};
  const StackSpec spec = random_spec(rng);
  constexpr std::size_t kLanes = 6;
  std::vector<std::vector<PowerMap>> powers;
  for (std::size_t v = 0; v < kLanes; ++v) powers.push_back(random_power(spec, rng));

  const auto run_lane_set = [&](const std::vector<std::size_t>& order) {
    // One model holding the lanes in `order`; returns per-original-lane
    // temperatures keyed by the order mapping.
    BatchStackModel model{spec, order.size()};
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
      for (std::size_t l = 0; l < spec.layers.size(); ++l) {
        model.set_layer_power(slot, l, powers[order[slot]][l]);
      }
    }
    for (int s = 0; s < 5; ++s) model.step(Time::us(25.0));
    std::vector<std::vector<double>> fields(order.size());
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
      for (std::size_t l = 0; l < spec.layers.size(); ++l) {
        for (std::size_t c = 0; c < model.cells_per_layer(); ++c) {
          fields[slot].push_back(model.cell_temp(slot, l, c).value());
        }
      }
      fields[slot].push_back(model.sink_temp(slot).value());
    }
    return fields;
  };

  const auto forward = run_lane_set({0, 1, 2, 3, 4, 5});
  const auto shuffled = run_lane_set({4, 0, 5, 2, 1, 3});
  const std::size_t shuffle[] = {4, 0, 5, 2, 1, 3};
  for (std::size_t slot = 0; slot < kLanes; ++slot) {
    ASSERT_EQ(shuffled[slot], forward[shuffle[slot]]) << "slot " << slot;
  }

  // Batch width 1: the same lane alone must reproduce its batched result.
  const auto solo = run_lane_set({3});
  ASSERT_EQ(solo[0], forward[3]);
}

TEST(BatchThermal, ExplicitStepAllocationFreeAfterConstruction) {
  Rng rng{0xa110'c0deULL};
  const StackSpec spec = random_spec(rng);
  obs::CounterRegistry counters;
  BatchStackModel model{spec, 8};
  model.set_counters(&counters);
  for (std::size_t v = 0; v < model.lanes(); ++v) {
    const auto maps = random_power(spec, rng);
    for (std::size_t l = 0; l < spec.layers.size(); ++l) model.set_layer_power(v, l, maps[l]);
  }
  model.step(Time::us(20.0));  // warm-up outside the counted window

  const std::uint64_t before = allocations();
  for (int s = 0; s < 10; ++s) model.step(Time::us(20.0));
  model.step(model.stable_step());
  EXPECT_EQ(allocations(), before) << "batched explicit step allocated";
  EXPECT_GT(counters.counter_value(obs::names::kThermalBatchSweeps), 0u);
}

TEST(BatchThermal, AdiStepAllocationFreeIncludingRefactor) {
  BatchOptions opt;
  opt.kernel = TransientKernel::kAdi;
  StackSpec spec = hbm_stack_spec(16, 10, 8);
  obs::CounterRegistry counters;
  BatchStackModel adi{spec, 4, opt};
  adi.set_counters(&counters);
  for (std::size_t v = 0; v < adi.lanes(); ++v) adi.set_layer_power_uniform(v, 0, 8.0);
  adi.step(Time::ms(1.0));  // warm-up builds the first factorization

  const std::uint64_t before = allocations();
  for (int s = 0; s < 5; ++s) adi.step(Time::ms(1.0));
  adi.step(Time::ms(2.5));  // different substep length: in-place refactor
  EXPECT_EQ(allocations(), before) << "ADI step (incl. refactor) allocated";
  EXPECT_GT(counters.counter_value(obs::names::kThermalBatchAdiSolves), 0u);
}

TEST(BatchThermal, SubstepsForFailsLoudlyWhenStableDtCollapses) {
  // Any dt needing more than kMaxTransientSubsteps explicit substeps must
  // throw, not silently loop for minutes.  5e6 x stable_step > 2^22.
  StackSpec spec = hbm_stack_spec(16, 12, 10);
  StackModel scalar{spec};
  const Time huge = Time::sec(scalar.stable_step().as_sec() * 5.0e6);
  EXPECT_THROW((void)scalar.substeps_for(huge), ConfigError);
  EXPECT_THROW(scalar.step(huge), ConfigError);

  BatchStackModel batch{spec, 2};
  EXPECT_THROW((void)batch.substeps_for(huge), ConfigError);

  // The same dt under ADI stays tractable (factor 32 fewer substeps).
  BatchOptions opt;
  opt.kernel = TransientKernel::kAdi;
  BatchStackModel adi{spec, 2, opt};
  EXPECT_LE(adi.substeps_for(huge), kMaxTransientSubsteps);

  // Non-positive steps are rejected everywhere.
  EXPECT_THROW((void)scalar.substeps_for(Time::zero()), ConfigError);
  EXPECT_THROW((void)batch.substeps_for(Time::zero()), ConfigError);
}

TEST(BatchThermal, AdiMatchesTightDtExplicitOnTallStack) {
  // 16-high HBM-class stack.  The ADI step dt is >= 10x the explicit stable
  // dt (acceptance criterion); the tight-dt explicit reference advances the
  // same dt through the scalar fast path (bit-identical to step_reference).
  StackSpec spec = hbm_stack_spec(16, 12, 10);
  // Interval-simulation heat-capacity scaling (as HmcThermalConfig does):
  // makes the settle fast enough to test while preserving the geometry.
  for (auto& l : spec.layers) l.volumetric_heat_capacity *= 0.05;
  spec.sink_heat_capacity *= 0.05;

  BatchOptions opt;
  opt.kernel = TransientKernel::kAdi;
  BatchStackModel adi{spec, 2, opt};
  StackModel explicit_ref{spec};

  const Time dt = Time::sec(adi.stable_step().as_sec() * 32.0);
  ASSERT_GE(dt.as_sec() / adi.stable_step().as_sec(), 10.0);
  ASSERT_EQ(adi.substeps_for(dt), 1u);  // one ADI pass per step

  // Hot logic die + warm top DRAM, replicated on both lanes.
  adi.set_layer_power_uniform(0, 0, 10.0);
  adi.set_layer_power_uniform(0, 16, 2.0);
  adi.set_layer_power_uniform(1, 0, 10.0);
  adi.set_layer_power_uniform(1, 16, 2.0);
  PowerMap logic{spec.floorplan.grid};
  PowerMap dram{spec.floorplan.grid};
  const auto n_cells = static_cast<double>(spec.floorplan.grid.cells());
  for (std::size_t c = 0; c < spec.floorplan.grid.cells(); ++c) {
    logic.add(c, 10.0 / n_cells);
    dram.add(c, 2.0 / n_cells);
  }
  explicit_ref.set_layer_power(0, logic);
  explicit_ref.set_layer_power(16, dram);

  double max_err = 0.0;
  double max_rise = 0.0;
  for (int s = 0; s < 120; ++s) {
    adi.step(dt);
    explicit_ref.step(dt);
    for (std::size_t l = 0; l < adi.layer_count(); ++l) {
      const double want = explicit_ref.layer_peak(l).value();
      max_rise = std::max(max_rise, want - spec.ambient.value());
      for (std::size_t lane = 0; lane < adi.lanes(); ++lane) {
        max_err = std::max(max_err, std::abs(adi.layer_peak(lane, l).value() - want));
      }
    }
  }
  ASSERT_GT(max_rise, 5.0);  // the transient actually heated the stack
  RecordProperty("max_adi_error_k", std::to_string(max_err));
  // Documented tolerance (DESIGN.md section 13): ADI peak temperatures stay
  // within 2% of the explicit temperature rise at dt = 32x stable.
  EXPECT_LE(max_err, 0.02 * max_rise)
      << "max ADI error " << max_err << " K over rise " << max_rise << " K";
}

TEST(BatchThermal, RunnerBatchInvariantUnderBatchWidthAndJobs) {
  Rng rng{0x0b5e'55edULL};
  const StackSpec spec = random_spec(rng);
  std::vector<runner::ThermalLane> lanes(13);
  for (std::size_t v = 0; v < lanes.size(); ++v) {
    lanes[v].layer_power = random_power(spec, rng);
    lanes[v].ambient = Celsius{22.0 + static_cast<double>(v)};
  }

  const auto run = [&](std::size_t batch, unsigned jobs) {
    runner::ThermalBatchOptions opt;
    opt.batch = batch;
    opt.jobs = jobs;
    return runner::run_batch_thermal(spec, lanes, Time::us(40.0), 4, opt);
  };
  const auto base = run(1, 1);
  for (const auto& [batch, jobs] :
       std::vector<std::pair<std::size_t, unsigned>>{{4, 1}, {8, 4}, {64, 8}}) {
    const auto got = run(batch, jobs);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t v = 0; v < base.size(); ++v) {
      EXPECT_EQ(got[v].layer_peak_c, base[v].layer_peak_c) << "lane " << v;
      EXPECT_EQ(got[v].layer_mean_c, base[v].layer_mean_c) << "lane " << v;
      EXPECT_EQ(got[v].sink_c, base[v].sink_c) << "lane " << v;
    }
  }
}

// ---- Lane lifecycle (batched sweep executor, DESIGN.md section 14) ---------

/// Exact full-state comparison of two scalar models (field + sink).
void expect_scalar_matches_scalar(const StackModel& a, const StackModel& b) {
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (std::size_t c = 0; c < a.cells_per_layer(); ++c) {
      ASSERT_EQ(a.cell_temp(l, c).value(), b.cell_temp(l, c).value())
          << "layer " << l << " cell " << c;
    }
  }
  ASSERT_EQ(a.sink_temp().value(), b.sink_temp().value());
}

TEST(BatchThermalLifecycle, LoadStoreRoundTripIsExact) {
  Rng rng{0x10ad'510eULL};
  const StackSpec spec = random_spec(rng);
  StackModel src{spec};
  const auto maps = random_power(spec, rng);
  for (std::size_t l = 0; l < spec.layers.size(); ++l) src.set_layer_power(l, maps[l]);
  src.step(Time::us(30.0));  // non-trivial mid-transient state

  BatchStackModel batch{spec, 3};
  batch.load_lane(1, src);
  expect_lane_matches_scalar(batch, 1, src);

  // The exported model continues bit-identically with the original: exact
  // copies of temperatures, sink AND power round-tripped.
  StackModel dst{spec};
  batch.store_lane(1, dst);
  src.step(Time::us(10.0));
  dst.step(Time::us(10.0));
  expect_scalar_matches_scalar(src, dst);
}

TEST(BatchThermalLifecycle, StepLanesAdvancesEachLaneByItsOwnDt) {
  Rng rng{0x1a9e'd715ULL};
  const StackSpec spec = random_spec(rng);
  constexpr std::size_t kLanes = 4;
  BatchStackModel batch{spec, kLanes};

  std::vector<StackModel> twins;
  for (std::size_t v = 0; v < kLanes; ++v) {
    twins.emplace_back(spec);
    const auto maps = random_power(spec, rng);
    for (std::size_t l = 0; l < spec.layers.size(); ++l) twins[v].set_layer_power(l, maps[l]);
    batch.load_lane(v, twins[v]);
  }

  // Per-lane dt schedules, including idle (zero-dt) rounds: lanes that sit a
  // round out -- or that need fewer substeps than the round's longest lane --
  // must be preserved bit-for-bit.
  const Time menu[] = {Time::zero(), Time::us(10.0), Time::us(25.0), batch.stable_step()};
  for (int round = 0; round < 6; ++round) {
    Time dts[kLanes];
    for (std::size_t v = 0; v < kLanes; ++v) {
      dts[v] = menu[static_cast<std::size_t>(rng.next_in(0, 3))];
    }
    batch.step_lanes(dts);
    for (std::size_t v = 0; v < kLanes; ++v) {
      if (dts[v] > Time::zero()) twins[v].step(dts[v]);
      expect_lane_matches_scalar(batch, v, twins[v]);
    }
  }
}

TEST(BatchThermalLifecycle, RetireRefillPreservesSurvivorsAtAnyFillOrder) {
  Rng rng{0x4ef1'11edULL};
  const StackSpec spec = random_spec(rng);
  constexpr std::size_t kLanes = 4;

  const auto fresh_twin = [&](Rng& r) {
    StackModel m{spec};
    const auto maps = random_power(spec, r);
    for (std::size_t l = 0; l < spec.layers.size(); ++l) m.set_layer_power(l, maps[l]);
    return m;
  };

  BatchStackModel batch{spec, kLanes};
  std::vector<StackModel> twins;
  Rng twin_rng{0x7717'0001ULL};
  for (std::size_t v = 0; v < kLanes; ++v) {
    twins.push_back(fresh_twin(twin_rng));
    batch.load_lane(v, twins[v]);
  }

  std::vector<Time> dts(kLanes, Time::us(10.0));
  for (int r = 0; r < 3; ++r) {
    batch.step_lanes(dts.data());
    for (auto& t : twins) t.step(Time::us(10.0));
  }

  // Retire lanes 2 then 0 (store), refill in the opposite order with new
  // runs, stepping survivors in between: no survivor may move a bit.
  StackModel retired2{spec};
  batch.store_lane(2, retired2);
  expect_scalar_matches_scalar(retired2, twins[2]);
  twins[0] = fresh_twin(twin_rng);  // refill lane 0 first (reverse order)
  StackModel retired0{spec};
  batch.store_lane(0, retired0);
  batch.load_lane(0, twins[0]);
  dts[2] = Time::zero();  // lane 2 idles while empty
  batch.step_lanes(dts.data());
  for (std::size_t v = 0; v < kLanes; ++v) {
    if (v != 2) twins[v].step(Time::us(10.0));
  }
  twins[2] = fresh_twin(twin_rng);
  batch.load_lane(2, twins[2]);
  dts[2] = Time::us(10.0);

  for (int r = 0; r < 3; ++r) {
    batch.step_lanes(dts.data());
    for (auto& t : twins) t.step(Time::us(10.0));
  }
  for (std::size_t v = 0; v < kLanes; ++v) {
    SCOPED_TRACE("lane " + std::to_string(v));
    expect_lane_matches_scalar(batch, v, twins[v]);
  }
}

TEST(BatchThermalLifecycle, MixedGeometryLanesMatchTheirOwnScalarTwins) {
  // Same grid dims and layer count, different materials / sink / TIM /
  // ambient per lane: load_lane materializes per-lane conductance tables and
  // every lane must still track its own scalar twin bit-for-bit.
  Rng rng{0x314d'9e0dULL};
  const StackSpec base = random_spec(rng);
  constexpr std::size_t kLanes = 3;

  BatchStackModel batch{base, kLanes};
  EXPECT_FALSE(batch.mixed_geometry());

  std::vector<StackSpec> variants;
  std::vector<StackModel> twins;
  for (std::size_t v = 0; v < kLanes; ++v) {
    StackSpec s = base;  // keep floorplan + layer count, vary the physics
    s.sink_r = ThermalResistance{0.2 + 0.5 * static_cast<double>(v)};
    s.tim_r = base.tim_r * (1.0 + 0.4 * static_cast<double>(v));
    s.sink_heat_capacity = base.sink_heat_capacity * (1.0 + static_cast<double>(v));
    s.co_heater_watts = 1.5 * static_cast<double>(v);
    s.ambient = Celsius{22.0 + 4.0 * static_cast<double>(v)};
    for (auto& l : s.layers) l.conductivity *= 1.0 + 0.1 * static_cast<double>(v);
    variants.push_back(s);
    twins.emplace_back(s);
    const auto maps = random_power(s, rng);
    for (std::size_t l = 0; l < s.layers.size(); ++l) twins[v].set_layer_power(l, maps[l]);
    batch.load_lane(v, twins[v]);
  }
  EXPECT_TRUE(batch.mixed_geometry());
  // Mixed batches advance per-lane only; the uniform step() is rejected.
  EXPECT_THROW(batch.step(Time::us(10.0)), ConfigError);

  for (int round = 0; round < 5; ++round) {
    Time dts[kLanes];
    for (std::size_t v = 0; v < kLanes; ++v) {
      // Distinct per-lane dt (and per-lane stable substep) every round.
      dts[v] = (round + static_cast<int>(v)) % 3 == 0
                   ? Time::zero()
                   : Time::us(5.0 + 7.0 * static_cast<double>(v));
      if (dts[v] > Time::zero()) {
        ASSERT_EQ(batch.lane_stable_step(v), twins[v].stable_step());
      }
    }
    batch.step_lanes(dts);
    for (std::size_t v = 0; v < kLanes; ++v) {
      if (dts[v] > Time::zero()) twins[v].step(dts[v]);
      SCOPED_TRACE("round " + std::to_string(round) + " lane " + std::to_string(v));
      expect_lane_matches_scalar(batch, v, twins[v]);
    }
  }
}

std::string read_doc(const std::string& path) {
  std::ifstream doc{path};
  EXPECT_TRUE(doc.is_open()) << path << " missing";
  std::ostringstream ss;
  ss << doc.rdbuf();
  return ss.str();
}

TEST(BatchThermalDocsSync, PerformanceAndDesignDocumentTheContracts) {
  const std::string perf = read_doc(std::string{COOLPIM_DOCS_DIR} + "/PERFORMANCE.md");
  for (const char* needle :
       {"BatchStackModel", "lane-major", "bit-identical", "target_clones", "kAdi",
        "Thomas", "adi_dt_factor", "thermal/batch_lanes"}) {
    EXPECT_NE(perf.find(needle), std::string::npos)
        << needle << " not documented in docs/PERFORMANCE.md";
  }
  const std::string design = read_doc(std::string{COOLPIM_REPO_DIR} + "/DESIGN.md");
  for (const char* needle :
       {"## 13", "BatchStackModel", "structure-of-arrays", "step_reference",
        "kMaxTransientSubsteps", "2% of the explicit temperature rise"}) {
    EXPECT_NE(design.find(needle), std::string::npos)
        << needle << " not documented in DESIGN.md section 13";
  }
}

}  // namespace
}  // namespace coolpim::thermal
