// Tests for the synthetic graph generators.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>
#include <vector>

#include "graph/generator.hpp"

namespace coolpim::graph {
namespace {

TEST(RmatTest, SizeMatchesParameters) {
  const CsrGraph g = make_rmat(12, 8, 7);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(8) << 12);
  EXPECT_TRUE(g.has_weights());
}

TEST(RmatTest, DeterministicForSeed) {
  const CsrGraph a = make_rmat(10, 4, 99);
  const CsrGraph b = make_rmat(10, 4, 99);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
}

TEST(RmatTest, SeedsProduceDifferentGraphs) {
  const CsrGraph a = make_rmat(10, 4, 1);
  const CsrGraph b = make_rmat(10, 4, 2);
  EXPECT_NE(a.col_idx(), b.col_idx());
}

TEST(RmatTest, SkewedDegreeDistribution) {
  // Power-law-ish: max degree far above the mean.
  const CsrGraph g = make_rmat(14, 16, 3);
  EXPECT_GT(g.max_degree(), static_cast<std::uint32_t>(10.0 * g.mean_degree()));
}

TEST(RmatTest, UnweightedOption) {
  RmatParams p;
  p.weighted = false;
  const CsrGraph g = make_rmat(8, 4, 5, p);
  EXPECT_FALSE(g.has_weights());
}

TEST(RmatTest, InvalidProbabilitiesThrow) {
  RmatParams p;
  p.a = 0.8;
  p.b = 0.2;
  p.c = 0.2;  // a+b+c > 1
  EXPECT_THROW(make_rmat(8, 4, 5, p), ConfigError);
  EXPECT_THROW(make_rmat(0, 4, 5), ConfigError);
}

TEST(RmatTest, WeightsInRange) {
  RmatParams p;
  p.max_weight = 16;
  const CsrGraph g = make_rmat(10, 4, 9, p);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto w : g.edge_weights(v)) {
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 16u);
    }
  }
}

TEST(UniformTest, SizeAndSpread) {
  const CsrGraph g = make_uniform(1000, 8000, 4);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_EQ(g.num_edges(), 8000u);
  // Uniform graphs have a tight degree distribution compared to RMAT.
  EXPECT_LT(g.max_degree(), 40u);
}

TEST(GridTest, RegularDegrees) {
  const CsrGraph g = make_grid(8, 8);
  EXPECT_EQ(g.num_vertices(), 64u);
  EXPECT_EQ(g.num_edges(), 256u);  // 4 per vertex (torus)
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(GridTest, InvalidDimensionsThrow) {
  EXPECT_THROW(make_grid(0, 4), ConfigError);
}

TEST(LdbcLikeTest, EdgeFactorSixteen) {
  const CsrGraph g = make_ldbc_like(10, 1);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 16u * 1024u);
  EXPECT_TRUE(g.has_weights());
}

// Property: vertex-ID scrambling spreads high-degree vertices across the ID
// space (no front-loading), checked via the hub position.
TEST(RmatTest, ScrambleSpreadsHubs) {
  const CsrGraph g = make_rmat(12, 8, 21);
  VertexId hub = 0;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > best) {
      best = g.out_degree(v);
      hub = v;
    }
  }
  // With scrambling the hub is almost surely not vertex 0.
  EXPECT_NE(hub, 0u);
}

}  // namespace
}  // namespace coolpim::graph
