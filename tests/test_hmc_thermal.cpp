// Calibration tests: the HMC thermal model must reproduce the paper's anchor
// points (DESIGN.md section 6).  These are the load-bearing checks behind
// Figs. 1, 2, 4 and 5.
#include <gtest/gtest.h>

#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "power/energy_model.hpp"
#include "thermal/hmc_thermal.hpp"

namespace coolpim::thermal {
namespace {

using hmc::LinkModel;
using hmc::TransactionMix;
using power::CoolingType;
using power::EnergyParams;
using power::OperatingPoint;

OperatingPoint read_traffic(const LinkModel& link, double data_gbps) {
  TransactionMix mix;
  mix.reads_per_sec = data_gbps * 1e9 / 64.0;
  OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  return op;
}

OperatingPoint pim_traffic(const LinkModel& link, double op_per_ns) {
  TransactionMix mix;
  mix.pim_per_sec = op_per_ns * 1e9;
  mix.reads_per_sec = link.regular_bandwidth_with_pim(mix.pim_per_sec).as_bytes_per_sec() / 64.0;
  OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  op.pim_ops_per_sec = mix.pim_per_sec;
  return op;
}

double steady_peak(HmcThermalModel& model, const OperatingPoint& op) {
  model.apply_power(power::compute_power(EnergyParams{}, op));
  model.solve_steady();
  return model.peak_dram().value();
}

class Hmc20Anchors : public ::testing::Test {
 protected:
  LinkModel link_{hmc::hmc20_config()};
  HmcThermalModel model_{hmc20_thermal_config(CoolingType::kCommodityServer)};
};

TEST_F(Hmc20Anchors, IdleAbout33C) {
  EXPECT_NEAR(steady_peak(model_, read_traffic(link_, 0.0)), 33.0, 3.0);
}

TEST_F(Hmc20Anchors, FullBandwidthAbout81C) {
  // Paper Fig. 4: 320 GB/s with a commodity-server sink -> 81 C peak DRAM.
  EXPECT_NEAR(steady_peak(model_, read_traffic(link_, 320.0)), 81.0, 3.0);
}

TEST_F(Hmc20Anchors, PimBudgetCrossesAt1Point3OpPerNs) {
  // Paper Fig. 5: holding DRAM below 85 C requires a PIM rate <= 1.3 op/ns.
  EXPECT_NEAR(steady_peak(model_, pim_traffic(link_, 1.3)), 85.0, 3.0);
  EXPECT_LT(steady_peak(model_, pim_traffic(link_, 1.0)),
            steady_peak(model_, pim_traffic(link_, 1.3)));
}

TEST_F(Hmc20Anchors, MaxPimRateNearShutdownLimit) {
  // Paper Fig. 5: the 105 C thermal limit caps PIM offloading at 6.5 op/ns.
  EXPECT_NEAR(steady_peak(model_, pim_traffic(link_, 6.5)), 105.0, 4.0);
}

TEST_F(Hmc20Anchors, TemperatureMonotoneInPimRate) {
  double prev = 0.0;
  for (double r = 0.0; r <= 6.5; r += 0.5) {
    const double t = steady_peak(model_, pim_traffic(link_, r));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Hmc20Cooling, OrderingAcrossSinks) {
  const LinkModel link{hmc::hmc20_config()};
  double prev = 1e9;
  for (const auto type : {CoolingType::kPassive, CoolingType::kLowEndActive,
                          CoolingType::kCommodityServer, CoolingType::kHighEndActive}) {
    HmcThermalModel model{hmc20_thermal_config(type)};
    const double t = steady_peak(model, read_traffic(link, 320.0));
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Hmc20Cooling, PassiveCannotSustainFullBandwidth) {
  // Paper Fig. 4: the passive-sink curve exceeds the 105 C operating limit
  // long before 320 GB/s.
  const LinkModel link{hmc::hmc20_config()};
  HmcThermalModel model{hmc20_thermal_config(CoolingType::kPassive)};
  EXPECT_GT(steady_peak(model, read_traffic(link, 320.0)), 105.0);
}

TEST(Hmc20Cooling, HighEndKeepsFullBandwidthNormal) {
  const LinkModel link{hmc::hmc20_config()};
  HmcThermalModel model{hmc20_thermal_config(CoolingType::kHighEndActive)};
  EXPECT_LT(steady_peak(model, read_traffic(link, 320.0)), 85.0);
}

TEST(Hmc20Heatmap, HotspotsAtVaultCenters) {
  // Paper Fig. 3: hot spots appear at the vault centers of the logic layer.
  const LinkModel link{hmc::hmc20_config()};
  HmcThermalModel model{hmc20_thermal_config(CoolingType::kCommodityServer)};
  model.apply_power(power::compute_power(EnergyParams{}, read_traffic(link, 320.0)));
  model.solve_steady();
  const auto field = model.logic_heatmap();
  const auto& fp = model.config().floorplan;
  const std::size_t center = fp.vault_center_cell(fp.vaults_x / 2, fp.vaults_y / 2);
  const std::size_t corner = fp.grid.index(0, 0);
  EXPECT_GT(field[center], field[corner]);
  // The logic layer runs hotter than the upper DRAM dies.
  EXPECT_GE(model.peak_logic().value(), model.peak_dram().value() - 0.1);
}

TEST(Hmc11Prototype, SurfaceTemperaturesMatchFig1) {
  // Paper Fig. 1 thermal-camera readings, within a few degrees.
  struct Case {
    CoolingType type;
    double bw_gbps;
    double fpga_watts;
    double expected_surface;
  };
  const Case cases[] = {
      {CoolingType::kPassive, 0.0, 20.0, 71.1},
      {CoolingType::kPassive, 60.0, 30.0, 85.4},
      {CoolingType::kLowEndActive, 0.0, 20.0, 45.3},
      {CoolingType::kLowEndActive, 60.0, 30.0, 60.5},
      {CoolingType::kHighEndActive, 0.0, 20.0, 40.5},
      {CoolingType::kHighEndActive, 60.0, 30.0, 47.3},
  };
  const LinkModel link{hmc::hmc11_config()};
  for (const auto& c : cases) {
    HmcThermalModel model{hmc11_thermal_config(c.type, c.fpga_watts)};
    model.apply_power(power::compute_power(EnergyParams{}, read_traffic(link, c.bw_gbps)));
    model.solve_steady();
    EXPECT_NEAR(model.surface().value(), c.expected_surface, 6.0)
        << power::prototype_cooling(c.type).name << " @ " << c.bw_gbps << " GB/s";
  }
}

TEST(Hmc11Prototype, PassiveBusyDieNearShutdown) {
  // Paper Section III-A.2: the prototype shuts down around 85 C surface /
  // ~95 C die under load with the passive sink.
  const LinkModel link{hmc::hmc11_config()};
  HmcThermalModel model{hmc11_thermal_config(CoolingType::kPassive, 30.0)};
  model.apply_power(power::compute_power(EnergyParams{}, read_traffic(link, 60.0)));
  model.solve_steady();
  EXPECT_GT(model.peak_dram().value(), 90.0);
}

TEST(SurfaceEstimate, DieEstimateRule) {
  // ~5-10 C above surface given ~20 W (paper Section III-A).
  const auto die = HmcThermalModel::estimate_die_from_surface(Celsius{60.0}, Watts{20.0});
  EXPECT_NEAR(die.value(), 67.5, 0.01);
}

TEST(TransientBehaviour, RespondsWithinMilliseconds) {
  // The calibrated transient reaches most of a power step within a few
  // milliseconds, consistent with the paper's T_thermal ~ 1 ms feedback.
  const LinkModel link{hmc::hmc20_config()};
  HmcThermalModel model{hmc20_thermal_config(CoolingType::kCommodityServer)};
  const auto op = read_traffic(link, 320.0);
  model.apply_power(power::compute_power(EnergyParams{}, op));
  model.solve_steady();
  const double steady = model.peak_dram().value();
  model.reset();
  model.apply_power(power::compute_power(EnergyParams{}, op));
  model.step(Time::ms(5.0));
  const double after_5ms = model.peak_dram().value();
  EXPECT_GT(after_5ms - 25.0, 0.5 * (steady - 25.0));
}

}  // namespace
}  // namespace coolpim::thermal
