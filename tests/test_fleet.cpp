// Tests for the fleet tier: arrival-process determinism, node admission and
// service accounting, balancer selection and tie-breaking, the fleet-level
// conservation invariant, jobs=1 vs jobs=N bit-identity, and the docs-sync
// pin between docs/FLEET.md and the fleet knob/counter vocabulary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/fleet.hpp"
#include "obs/names.hpp"
#include "obs/observer.hpp"

namespace coolpim::fleet {
namespace {

std::vector<Arrival> drain(ArrivalProcess& p) {
  std::vector<Arrival> out;
  while (auto a = p.next()) out.push_back(*a);
  return out;
}

TEST(PoissonArrivalsTest, SameSeedSameStream) {
  PoissonArrivals a{2000.0, 50.0, 4, {}, 42};
  PoissonArrivals b{2000.0, 50.0, 4, {}, 42};
  const auto sa = drain(a);
  const auto sb = drain(b);
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].time_ms, sb[i].time_ms);
    EXPECT_EQ(sa[i].profile, sb[i].profile);
  }
}

TEST(PoissonArrivalsTest, DifferentSeedDifferentStream) {
  PoissonArrivals a{2000.0, 50.0, 4, {}, 42};
  PoissonArrivals b{2000.0, 50.0, 4, {}, 43};
  const auto sa = drain(a);
  const auto sb = drain(b);
  ASSERT_FALSE(sa.empty());
  bool any_diff = sa.size() != sb.size();
  for (std::size_t i = 0; !any_diff && i < sa.size(); ++i) {
    any_diff = sa[i].time_ms != sb[i].time_ms || sa[i].profile != sb[i].profile;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PoissonArrivalsTest, MonotoneWithinHorizonAndRoughlyAtRate) {
  PoissonArrivals p{4000.0, 200.0, 3, {}, 7};
  const auto s = drain(p);
  ASSERT_FALSE(s.empty());
  double prev = 0.0;
  for (const auto& a : s) {
    EXPECT_GE(a.time_ms, prev);
    EXPECT_LT(a.time_ms, 200.0);
    EXPECT_LT(a.profile, 3u);
    prev = a.time_ms;
  }
  // E[count] = 4 req/ms * 200 ms = 800; a 4-sigma band is +-113.
  EXPECT_GT(s.size(), 650u);
  EXPECT_LT(s.size(), 950u);
}

TEST(PoissonArrivalsTest, ZeroWeightClassNeverDrawn) {
  PoissonArrivals p{4000.0, 100.0, 3, {1.0, 0.0, 1.0}, 11};
  for (const auto& a : drain(p)) EXPECT_NE(a.profile, 1u);
}

TEST(TraceArrivalsTest, LoadsCsvAndResolvesWorkloadNames) {
  const std::string path = ::testing::TempDir() + "fleet_trace.csv";
  {
    std::ofstream out{path};
    out << "time_ms,workload\n0.5,bfs-q\n1.5,pagerank-q\n1.5,degree-q\n";
  }
  const auto profiles = synthetic_profiles();
  const auto schedule = load_trace(path, profiles);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].time_ms, 0.5);
  EXPECT_EQ(profiles[schedule[0].profile].workload, "bfs-q");
  EXPECT_EQ(profiles[schedule[1].profile].workload, "pagerank-q");
  EXPECT_EQ(profiles[schedule[2].profile].workload, "degree-q");
  std::remove(path.c_str());
}

TEST(TraceArrivalsTest, UnknownWorkloadThrows) {
  const std::string path = ::testing::TempDir() + "fleet_trace_bad.csv";
  {
    std::ofstream out{path};
    out << "0.5,no-such-workload\n";
  }
  EXPECT_THROW((void)load_trace(path, synthetic_profiles()), ConfigError);
  std::remove(path.c_str());
}

TEST(TraceArrivalsTest, NonMonotoneScheduleThrows) {
  EXPECT_THROW(TraceArrivals({{2.0, 0}, {1.0, 0}}), ConfigError);
}

TEST(NodeTest, ServesQueuedRequestsAndHeatsUp) {
  NodeConfig cfg;
  cfg.service_jitter = 0.0;  // exact service times for the arithmetic below
  const auto profiles = synthetic_profiles();
  Node node{0, cfg, profiles, 1};
  // Three bfs-q requests (2 ms each) into a 10 ms epoch: all served.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(node.enqueue(Request{i, 1, 0.0, 0}));
  }
  node.step(0.0, 10.0);
  const NodeSummary s = node.summary();
  EXPECT_EQ(s.served, 3u);
  EXPECT_DOUBLE_EQ(s.busy_ms, 6.0);
  EXPECT_EQ(node.backlog(), 0u);
  EXPECT_GT(node.temp_c(), cfg.ambient_c);       // heated by the busy time
  EXPECT_LT(node.temp_c(), cfg.ambient_c + 50);  // bounded by the profile heat
  ASSERT_EQ(node.latencies().size(), 3u);
  EXPECT_DOUBLE_EQ(node.latencies()[0].latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(node.latencies()[1].latency_ms, 4.0);
  EXPECT_DOUBLE_EQ(node.latencies()[2].latency_ms, 6.0);
}

TEST(NodeTest, PartialServiceCarriesOverEpochs) {
  NodeConfig cfg;
  cfg.service_jitter = 0.0;
  const auto profiles = synthetic_profiles();
  Node node{0, cfg, profiles, 1};
  ASSERT_TRUE(node.enqueue(Request{0, 3, 0.0, 0}));  // sssp-q: 4 ms
  node.step(0.0, 1.0);
  EXPECT_EQ(node.summary().served, 0u);
  EXPECT_EQ(node.backlog(), 1u);  // still in service
  node.step(1.0, 1.0);
  node.step(2.0, 1.0);
  node.step(3.0, 1.0);
  EXPECT_EQ(node.summary().served, 1u);
  ASSERT_EQ(node.latencies().size(), 1u);
  EXPECT_DOUBLE_EQ(node.latencies()[0].latency_ms, 4.0);
}

TEST(NodeTest, QueueCapacityBoundsAdmission) {
  NodeConfig cfg;
  cfg.queue_capacity = 2;
  const auto profiles = synthetic_profiles();
  Node node{0, cfg, profiles, 1};
  EXPECT_TRUE(node.enqueue(Request{0, 0, 0.0, 0}));
  EXPECT_TRUE(node.enqueue(Request{1, 0, 0.0, 0}));
  EXPECT_FALSE(node.enqueue(Request{2, 0, 0.0, 0}));  // full
  EXPECT_FALSE(node.view().admitting);
}

TEST(NodeTest, DeratesAndWarnsWhenHot) {
  NodeConfig cfg;
  cfg.service_jitter = 0.0;
  cfg.ambient_c = 84.0;  // one epoch of load crosses the 85 C threshold
  cfg.tau_ms = 1.0;      // fast thermal response for a short test
  const auto profiles = synthetic_profiles();
  Node node{0, cfg, profiles, 1};
  for (std::uint64_t i = 0; i < 20; ++i) {
    (void)node.enqueue(Request{i, 0, 0.0, 0});  // pagerank-q: 50 C steady rise
  }
  NodeSummary cold = node.summary();
  EXPECT_EQ(cold.warnings, 0u);
  for (int e = 0; e < 10; ++e) node.step(e * 5.0, 5.0);
  const NodeSummary s = node.summary();
  EXPECT_GT(s.warnings, 0u);          // hot epochs tallied
  EXPECT_GT(s.peak_c, 85.0);          // crossed the derate threshold
  EXPECT_GT(node.view().warning_rate, 0.0);
  // Derated service: 10 epochs x 5 ms at derate 0.5 serves at most
  // 50 ms / (3 ms / 0.5) + 1-in-flight ~ 9 of the 20 requests.
  EXPECT_LT(s.served, 12u);
}

std::vector<NodeView> uniform_views(std::size_t n) {
  std::vector<NodeView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    views[i].index = i;
    views[i].queue_len = 3;
    views[i].queue_capacity = 16;
    views[i].temp_c = 50.0;
    views[i].admitting = true;
  }
  return views;
}

TEST(BalancerTest, RoundRobinRotatesAndSkipsNonAdmitting) {
  auto views = uniform_views(3);
  auto rr = make_balancer("round-robin", {});
  const Request req{};
  EXPECT_EQ(rr->pick(views, req), 0u);
  EXPECT_EQ(rr->pick(views, req), 1u);
  EXPECT_EQ(rr->pick(views, req), 2u);
  EXPECT_EQ(rr->pick(views, req), 0u);
  views[1].admitting = false;
  EXPECT_EQ(rr->pick(views, req), 2u);  // cursor at 1: skips to 2
  for (auto& v : views) v.admitting = false;
  EXPECT_EQ(rr->pick(views, req), kDefer);
}

TEST(BalancerTest, JoinShortestQueueBreaksTiesTowardLowestIndex) {
  auto views = uniform_views(4);
  auto jsq = make_balancer("join-shortest-queue", {});
  const Request req{};
  EXPECT_EQ(jsq->pick(views, req), 0u);  // all equal: lowest index
  views[2].queue_len = 1;
  EXPECT_EQ(jsq->pick(views, req), 2u);
  views[0].queue_len = 1;
  EXPECT_EQ(jsq->pick(views, req), 0u);  // tie at 1: back to lowest index
}

TEST(BalancerTest, ThermalAwarePenalizesHotAndWarnedNodes) {
  auto views = uniform_views(3);
  BalancerConfig cfg;  // ref 80 C, 4 slots/degC, 8 slots/(warning/epoch)
  auto ta = make_balancer("thermal-aware", cfg);
  const Request req{};
  EXPECT_EQ(ta->pick(views, req), 0u);  // all equal: lowest index
  views[0].temp_c = 88.0;               // +32 slots: worst node despite tie
  EXPECT_EQ(ta->pick(views, req), 1u);
  views[1].warning_rate = 0.5;          // +4 slots
  views[1].queue_len = 2;               // still 6 < node 2's 3 slots? no: 2+4=6 > 3
  EXPECT_EQ(ta->pick(views, req), 2u);
  views[2].admitting = false;
  EXPECT_EQ(ta->pick(views, req), 1u);  // best admitting node wins
}

TEST(BalancerTest, RegistryVocabulary) {
  EXPECT_TRUE(balancer_known("round-robin"));
  EXPECT_TRUE(balancer_known("join-shortest-queue"));
  EXPECT_TRUE(balancer_known("thermal-aware"));
  EXPECT_FALSE(balancer_known("coin-flip"));
  EXPECT_THROW((void)make_balancer("coin-flip", {}), ConfigError);
  for (const char* name : {"round-robin", "join-shortest-queue", "thermal-aware"}) {
    EXPECT_NE(balancer_names().find(name), std::string::npos);
    EXPECT_EQ(make_balancer(name, {})->name(), name);
  }
}

FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.nodes = 3;
  cfg.arrival_rate_per_s = 2000.0;
  cfg.duration_ms = 120.0;
  cfg.seed = 99;
  return cfg;
}

TEST(FleetTest, ConservationInvariant) {
  for (const char* balancer : {"round-robin", "join-shortest-queue", "thermal-aware"}) {
    FleetConfig cfg = small_fleet();
    cfg.balancer = balancer;
    const FleetResult r = run_fleet(cfg);
    EXPECT_GT(r.arrived, 0u) << balancer;
    EXPECT_GT(r.served, 0u) << balancer;
    EXPECT_EQ(r.arrived, r.served + r.shed + r.in_flight)
        << balancer << ": arrived must equal served + shed + in-flight";
    EXPECT_LE(r.p50_latency_ms, r.p99_latency_ms) << balancer;
    EXPECT_LE(r.p99_latency_ms, r.max_latency_ms) << balancer;
    EXPECT_GE(r.p50_latency_ms, 0.0) << balancer;
    ASSERT_EQ(r.nodes.size(), cfg.nodes) << balancer;
  }
}

TEST(FleetTest, OverloadShedsThroughAdmissionControl) {
  FleetConfig cfg = small_fleet();
  cfg.node.queue_capacity = 2;
  cfg.arrival_rate_per_s = 20000.0;  // far past 3 nodes' service capacity
  cfg.max_defer_epochs = 2;
  const FleetResult r = run_fleet(cfg);
  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.deferrals, 0u);
  EXPECT_EQ(r.arrived, r.served + r.shed + r.in_flight);
}

TEST(FleetTest, JobsOneAndEightAreBitIdentical) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 5;
  cfg.jobs = 1;
  const FleetResult one = run_fleet(cfg);
  cfg.jobs = 8;
  const FleetResult eight = run_fleet(cfg);
  EXPECT_EQ(one.node_summary_csv(), eight.node_summary_csv());
  EXPECT_EQ(one.arrived, eight.arrived);
  EXPECT_EQ(one.served, eight.served);
  EXPECT_EQ(one.shed, eight.shed);
  EXPECT_EQ(one.deferrals, eight.deferrals);
  EXPECT_EQ(one.p50_latency_ms, eight.p50_latency_ms);
  EXPECT_EQ(one.p99_latency_ms, eight.p99_latency_ms);
  EXPECT_EQ(one.max_node_peak_c, eight.max_node_peak_c);
}

FleetConfig grid_fleet() {
  FleetConfig cfg = small_fleet();
  cfg.thermal = ThermalFidelity::kGrid;
  cfg.grid.dram_dies = 2;
  // Smallest grid that still resolves the HBM floorplan's 8x4 vaults.
  cfg.grid.grid_nx = 8;
  cfg.grid.grid_ny = 4;
  cfg.duration_ms = 60.0;
  return cfg;
}

TEST(FleetTest, GridFidelityServesAndHeatsAboveAmbient) {
  const FleetConfig cfg = grid_fleet();
  const FleetResult r = run_fleet(cfg);
  EXPECT_GT(r.arrived, 0u);
  EXPECT_GT(r.served, 0u);
  EXPECT_EQ(r.arrived, r.served + r.shed + r.in_flight);
  // Loaded nodes must heat above their idle ambient through the stack grid.
  EXPECT_GT(r.max_node_peak_c, cfg.node.ambient_c);
  for (const NodeSummary& n : r.nodes) EXPECT_GE(n.final_c, cfg.node.ambient_c - 1e-9);
}

TEST(FleetTest, GridFidelityBitIdenticalAcrossJobsAndKernels) {
  for (const bool use_adi : {false, true}) {
    FleetConfig cfg = grid_fleet();
    cfg.nodes = 5;
    cfg.grid.use_adi = use_adi;
    cfg.rack_ambient_spread_c = 4.0;
    cfg.jobs = 1;
    const FleetResult one = run_fleet(cfg);
    cfg.jobs = 8;
    const FleetResult eight = run_fleet(cfg);
    EXPECT_EQ(one.node_summary_csv(), eight.node_summary_csv()) << "use_adi=" << use_adi;
    EXPECT_EQ(one.arrived, eight.arrived) << "use_adi=" << use_adi;
    EXPECT_EQ(one.max_node_peak_c, eight.max_node_peak_c) << "use_adi=" << use_adi;
  }
}

TEST(FleetTest, GridFidelityRackGradientOrdersIdleNodeTemps) {
  FleetConfig cfg = grid_fleet();
  cfg.nodes = 4;
  cfg.rack_ambient_spread_c = 6.0;
  cfg.arrival_rate_per_s = 1.0;  // essentially idle: ambient dominates
  const FleetResult r = run_fleet(cfg);
  for (std::size_t i = 1; i < r.nodes.size(); ++i) {
    EXPECT_GE(r.nodes[i].final_c, r.nodes[i - 1].final_c - 1e-9)
        << "rack gradient must order idle lane temperatures";
  }
}

TEST(FleetTest, GridFidelityKeyGatedOnMode) {
  const FleetConfig base = small_fleet();
  // Under kRc the grid sub-config must be inert: pre-existing keys depend
  // only on the fields that existed before grid fidelity did.
  FleetConfig rc_tweaked = base;
  rc_tweaked.grid.watts_per_c *= 2.0;
  rc_tweaked.grid.use_adi = true;
  EXPECT_EQ(fleet_key(base), fleet_key(rc_tweaked));
  // Turning the mode on -- and then any grid field -- changes the key.
  FleetConfig grid_on = base;
  grid_on.thermal = ThermalFidelity::kGrid;
  EXPECT_NE(fleet_key(base), fleet_key(grid_on));
  FleetConfig grid_tweaked = grid_on;
  grid_tweaked.grid.grid_nx = 6;
  EXPECT_NE(fleet_key(grid_on), fleet_key(grid_tweaked));
}

TEST(FleetTest, GridFidelityValidation) {
  {
    FleetConfig cfg = grid_fleet();
    cfg.grid.watts_per_c = 0.0;
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    FleetConfig cfg = grid_fleet();
    cfg.grid.dram_dies = 0;
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    FleetConfig cfg = grid_fleet();
    cfg.grid.heat_capacity_scale = -1.0;
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    // The same bad fields are ignored under kRc -- the mode gates them.
    FleetConfig cfg = grid_fleet();
    cfg.thermal = ThermalFidelity::kRc;
    cfg.grid.watts_per_c = 0.0;
    EXPECT_NO_THROW((void)run_fleet(cfg));
  }
}

TEST(FleetTest, GridFidelityObserverCountsBatchLanes) {
  FleetConfig cfg = grid_fleet();
  obs::RunObserver observer;
  cfg.observer = &observer;
  const FleetResult r = run_fleet(cfg);
  EXPECT_GT(r.served, 0u);
  const auto& c = observer.counters;
  EXPECT_GT(c.counter_value(obs::names::kThermalBatchLanes), 0u);
  EXPECT_GT(c.counter_value(obs::names::kThermalBatchSweeps), 0u);
}

TEST(FleetTest, ObserverDoesNotPerturbResults) {
  FleetConfig cfg = small_fleet();
  const std::string bare = run_fleet(cfg).node_summary_csv();
  obs::RunObserver observer;
  cfg.observer = &observer;
  cfg.counter_mark_every = 10;
  const FleetResult observed = run_fleet(cfg);
  EXPECT_EQ(bare, observed.node_summary_csv());
  // And the counters agree with the result totals.
  const auto& c = observer.counters;
  EXPECT_EQ(c.counter_value(obs::names::kFleetRequestsArrived), observed.arrived);
  EXPECT_EQ(c.counter_value(obs::names::kFleetRequestsServed), observed.served);
  EXPECT_EQ(c.counter_value(obs::names::kFleetRequestsShed), observed.shed);
  EXPECT_EQ(c.counter_value(obs::names::kFleetRequestsDeferred), observed.deferrals);
  EXPECT_EQ(c.counter_value(obs::names::kFleetNodeWarnings), observed.total_warnings);
  EXPECT_FALSE(observer.counters.marks().empty());
}

TEST(FleetTest, KeyExcludesJobsAndObserverIncludesSeedAndBalancer) {
  FleetConfig a = small_fleet();
  FleetConfig b = a;
  b.jobs = 8;
  b.counter_mark_every = 5;
  obs::RunObserver observer;
  b.observer = &observer;
  EXPECT_EQ(fleet_key(a), fleet_key(b));
  b = a;
  b.seed = 100;
  EXPECT_NE(fleet_key(a), fleet_key(b));
  b = a;
  b.balancer = "round-robin";
  EXPECT_NE(fleet_key(a), fleet_key(b));
  b = a;
  b.rack_ambient_spread_c = 5.0;
  EXPECT_NE(fleet_key(a), fleet_key(b));
}

TEST(FleetTest, ValidationRejectsBadConfigs) {
  {
    FleetConfig cfg = small_fleet();
    cfg.balancer = "coin-flip";
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    FleetConfig cfg = small_fleet();
    cfg.profiles.clear();
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    FleetConfig cfg = small_fleet();
    cfg.epoch_ms = cfg.duration_ms * 2;
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
  {
    FleetConfig cfg = small_fleet();
    cfg.mix = {1.0};  // wrong arity vs 4 profiles
    EXPECT_THROW((void)run_fleet(cfg), ConfigError);
  }
}

TEST(FleetTest, RackGradientMakesThermalAwareAvoidTheHotEnd) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 4;
  cfg.rack_ambient_spread_c = 28.0;  // hot-end node idles at 63 C
  cfg.duration_ms = 300.0;
  // ~0.625 utilization per node under even placement: enough to push the
  // hot-end node past the 80 C routing reference, far from saturating the
  // cool nodes -- the regime where placement, not capacity, decides temps.
  cfg.arrival_rate_per_s = 1000.0;
  cfg.balancer = "round-robin";
  const FleetResult rr = run_fleet(cfg);
  cfg.balancer = "thermal-aware";
  const FleetResult ta = run_fleet(cfg);
  // Thermal-aware sends the hot-end node less work than oblivious placement.
  EXPECT_LT(ta.nodes.back().served, rr.nodes.back().served);
  EXPECT_LE(ta.max_node_peak_c, rr.max_node_peak_c);
}

// ---- Docs sync: docs/FLEET.md vs the fleet knob/counter vocabulary ----------

std::string read_fleet_doc() {
  std::ifstream doc{std::string{COOLPIM_DOCS_DIR} + "/FLEET.md"};
  EXPECT_TRUE(doc.is_open()) << "docs/FLEET.md missing";
  std::ostringstream ss;
  ss << doc.rdbuf();
  return ss.str();
}

TEST(FleetDocsSyncTest, KnobTableCoversTheFleetRunConfigVocabulary) {
  const std::string doc = read_fleet_doc();
  for (const char* token :
       {"--fleet-nodes", "--arrival-rate", "--balancer", "COOLPIM_FLEET_NODES",
        "COOLPIM_ARRIVAL_RATE", "COOLPIM_BALANCER", "--duration-ms", "--rack-spread-c",
        "--queue-cap", "--synthetic", "--arrival-trace", "--mark-every"}) {
    EXPECT_NE(doc.find("`" + std::string{token} + "`"), std::string::npos)
        << token << " not documented in docs/FLEET.md";
  }
}

TEST(FleetDocsSyncTest, EveryRegisteredBalancerIsDocumented) {
  const std::string doc = read_fleet_doc();
  for (const char* name : {"round-robin", "join-shortest-queue", "thermal-aware"}) {
    EXPECT_NE(doc.find("`" + std::string{name} + "`"), std::string::npos)
        << "balancer " << name << " not documented in docs/FLEET.md";
  }
}

TEST(FleetDocsSyncTest, EveryFleetCounterAndGaugeIsDocumented) {
  const std::string doc = read_fleet_doc();
  for (const auto name : obs::names::kAllCounters) {
    if (name.substr(0, 6) != "fleet/") continue;
    EXPECT_NE(doc.find("`" + std::string{name} + "`"), std::string::npos)
        << name << " not documented in docs/FLEET.md";
  }
  for (const auto name : obs::names::kAllGauges) {
    if (name.substr(0, 6) != "fleet/") continue;
    EXPECT_NE(doc.find("`" + std::string{name} + "`"), std::string::npos)
        << name << " not documented in docs/FLEET.md";
  }
}

}  // namespace
}  // namespace coolpim::fleet
