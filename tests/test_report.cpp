// Tests for the CSV writer and result export, including the docs/header sync
// check that pins report.hpp's documented column lists to the emitted headers
// and to docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "sys/report.hpp"

namespace coolpim {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.row({"a", "b", "42"});
  EXPECT_EQ(os.str(), "a,b,42\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvWriterTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(CsvWriterTest, NumPrecision) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(0.0), "0");
}

sys::RunResult sample_result() {
  sys::RunResult r;
  r.workload = "dc";
  r.scenario = "CoolPIM (HW)";
  r.exec_time = Time::ms(2.5);
  r.link_data_bytes = 1e9;
  r.pim_ops = 1000000;
  r.peak_dram_temp = Celsius{84.5};
  r.cube_energy_j = 0.1;
  r.fan_energy_j = 0.01;
  r.pim_rate.record(Time::ms(0), 1.0);
  r.pim_rate.record(Time::ms(1), 2.0);
  r.dram_temp.record(Time::ms(0), 80.0);
  r.dram_temp.record(Time::ms(1), 84.0);
  r.link_bw.record(Time::ms(0), 200.0);
  r.link_bw.record(Time::ms(1), 250.0);
  return r;
}

TEST(ReportTest, SummaryCsvShape) {
  std::ostringstream os;
  sys::write_summary_csv(os, {sample_result(), sample_result()});
  const std::string out = os.str();
  // Header + two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("workload,scenario,exec_ms"), std::string::npos);
  EXPECT_NE(out.find("CoolPIM (HW)"), std::string::npos);
  EXPECT_NE(out.find("84.5"), std::string::npos);
}

TEST(ReportTest, SummaryQuotesScenarioOnlyWhenNeeded) {
  std::ostringstream os;
  sys::write_summary_csv(os, {sample_result()});
  // "CoolPIM (HW)" has no comma, so it must NOT be quoted.
  EXPECT_EQ(os.str().find("\"CoolPIM (HW)\""), std::string::npos);
  EXPECT_NE(os.str().find("CoolPIM (HW)"), std::string::npos);
}

TEST(ReportTest, TimeseriesLongFormat) {
  std::ostringstream os;
  sys::write_timeseries_csv(os, {sample_result()});
  const std::string out = os.str();
  // Header + 2 samples.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("t_ms"), std::string::npos);
  EXPECT_NE(out.find("dc,CoolPIM (HW),0,1,80,200"), std::string::npos);
}

std::string join(const std::vector<std::string_view>& cols) {
  std::string out;
  for (const auto c : cols) {
    if (!out.empty()) out += ',';
    out += c;
  }
  return out;
}

std::string first_line(const std::string& s) { return s.substr(0, s.find('\n')); }

// The column lists in report.hpp are the documented schema: they must match
// what the writers actually emit, and every column must be named in
// docs/OBSERVABILITY.md (referenced from the report.hpp header comment).
TEST(ReportTest, DocsHeaderColumnSync) {
  std::ostringstream summary;
  sys::write_summary_csv(summary, {});
  EXPECT_EQ(first_line(summary.str()), join(sys::summary_csv_columns()));

  std::ostringstream timeseries;
  sys::write_timeseries_csv(timeseries, {});
  EXPECT_EQ(first_line(timeseries.str()), join(sys::timeseries_csv_columns()));

  std::ifstream doc{std::string{COOLPIM_DOCS_DIR} + "/OBSERVABILITY.md"};
  ASSERT_TRUE(doc.is_open()) << "docs/OBSERVABILITY.md missing";
  std::stringstream buf;
  buf << doc.rdbuf();
  const std::string text = buf.str();
  for (const auto col : sys::summary_csv_columns()) {
    SCOPED_TRACE(col);
    EXPECT_NE(text.find(col), std::string::npos)
        << "summary column not documented in docs/OBSERVABILITY.md";
  }
  for (const auto col : sys::timeseries_csv_columns()) {
    SCOPED_TRACE(col);
    EXPECT_NE(text.find(col), std::string::npos)
        << "timeseries column not documented in docs/OBSERVABILITY.md";
  }
}

}  // namespace
}  // namespace coolpim
