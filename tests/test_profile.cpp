// Tests for the WorkloadProfile aggregate math the Eq. 1 inputs rely on.
#include <gtest/gtest.h>

#include "graph/profile.hpp"

namespace coolpim::graph {
namespace {

WorkloadProfile two_iteration_profile() {
  WorkloadProfile p;
  p.name = "synthetic";
  IterationProfile a;
  a.edges_processed = 100;
  a.atomic_ops = 50;
  a.compute_warp_instructions = 1000;
  a.work_threads = 320;
  a.divergent_warp_ratio = 0.8;
  IterationProfile b;
  b.edges_processed = 300;
  b.atomic_ops = 150;
  b.compute_warp_instructions = 3000;
  b.work_threads = 960;
  b.divergent_warp_ratio = 0.2;
  p.iterations = {a, b};
  return p;
}

TEST(ProfileTest, Totals) {
  const auto p = two_iteration_profile();
  EXPECT_EQ(p.total_edges(), 400u);
  EXPECT_EQ(p.total_atomics(), 200u);
  EXPECT_EQ(p.total_warp_instructions(), 4000u);
}

TEST(ProfileTest, PimIntensityIsAtomicsPerInstruction) {
  const auto p = two_iteration_profile();
  EXPECT_DOUBLE_EQ(p.pim_intensity(), 200.0 / 4000.0);
}

TEST(ProfileTest, DivergenceIsWorkWeighted) {
  const auto p = two_iteration_profile();
  // (0.8*320 + 0.2*960) / (320+960) = 448/1280 = 0.35.
  EXPECT_DOUBLE_EQ(p.divergence_ratio(), 0.35);
}

TEST(ProfileTest, EmptyProfileSafeDefaults) {
  const WorkloadProfile p;
  EXPECT_EQ(p.total_edges(), 0u);
  EXPECT_DOUBLE_EQ(p.pim_intensity(), 0.0);
  EXPECT_DOUBLE_EQ(p.divergence_ratio(), 0.0);
}

TEST(ProfileTest, ZeroWorkIterationIgnoredInDivergence) {
  WorkloadProfile p;
  IterationProfile it;
  it.work_threads = 0;
  it.divergent_warp_ratio = 1.0;
  p.iterations = {it};
  EXPECT_DOUBLE_EQ(p.divergence_ratio(), 0.0);
}

}  // namespace
}  // namespace coolpim::graph
