// Property tests for sim::EventQueue ordering and the Simulation stop() /
// run_until boundary semantics (previously only covered incidentally via
// test_sim's integration cases).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace coolpim::sim {
namespace {

TEST(EventQueueProperty, FifoWithinEveryTimestamp) {
  // Schedule many events over a handful of timestamps in random order; within
  // each timestamp the pop order must equal the schedule order regardless of
  // how the timestamps interleave.
  Rng rng{0x5eed'f1f0};
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    std::map<std::int64_t, std::vector<int>> scheduled;  // time -> insert order
    std::map<std::int64_t, std::vector<int>> popped;
    for (int i = 0; i < 200; ++i) {
      const auto t_ns = static_cast<std::int64_t>(rng.next_below(8));
      scheduled[t_ns].push_back(i);
      q.schedule(Time::ns(static_cast<double>(t_ns)),
                 [&popped, t_ns, i] { popped[t_ns].push_back(i); });
    }
    Time last = Time::zero();
    while (!q.empty()) {
      auto [t, action] = q.pop();
      EXPECT_GE(t, last);  // never travels backwards
      last = t;
      action();
    }
    EXPECT_EQ(popped, scheduled);
  }
}

TEST(EventQueueProperty, NextTimeTracksEarliestEvent) {
  EventQueue q;
  q.schedule(Time::ns(30), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(30));
  q.schedule(Time::ns(10), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(10));
  q.schedule(Time::ns(20), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(10));
  EXPECT_EQ(q.size(), 3u);
  (void)q.pop();
  EXPECT_EQ(q.next_time(), Time::ns(20));
}

TEST(EventQueueProperty, SchedulingAtLastPoppedTimeIsAllowed) {
  // An event may schedule a successor at the *current* time (same-timestamp
  // FIFO handles it); only strictly-past times are rejected.
  EventQueue q;
  q.schedule(Time::ns(10), [] {});
  (void)q.pop();
  EXPECT_NO_THROW(q.schedule(Time::ns(10), [] {}));
  EXPECT_THROW(q.schedule(Time::ps(9999), [] {}), SimError);
}

TEST(EventQueueProperty, ClearResetsSequenceAndPastGuard) {
  EventQueue q;
  q.schedule(Time::ns(50), [] {});
  (void)q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  // After clear() the queue accepts early timestamps again and FIFO order
  // restarts from a fresh sequence counter.
  std::vector<int> order;
  q.schedule(Time::ns(1), [&] { order.push_back(0); });
  q.schedule(Time::ns(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SimulationBoundary, EventExactlyAtDeadlineRuns) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(Time::ns(10), [&] { ++fired; });
  sim.run_until(Time::ns(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::ns(10));
  EXPECT_FALSE(sim.pending());
}

TEST(SimulationBoundary, EventJustPastDeadlineDoesNotRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(Time::ns(10) + Time::ps(1), [&] { ++fired; });
  sim.run_until(Time::ns(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Time::ns(10));  // clock still advances to the deadline
  EXPECT_TRUE(sim.pending());
}

TEST(SimulationBoundary, StopIsClearedByTheNextRun) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_in(Time::ns(1), [&] {
    fired.push_back(1);
    sim.stop();
  });
  sim.schedule_in(Time::ns(2), [&] { fired.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_TRUE(sim.pending());
  // stop() affects only the run that observed it; a fresh run resumes.
  sim.run_to_completion();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_FALSE(sim.pending());
}

TEST(SimulationBoundary, StopDoesNotRewindTheClock) {
  Simulation sim;
  sim.schedule_in(Time::ns(5), [&] { sim.stop(); });
  sim.schedule_in(Time::ns(50), [] {});
  const Time reached = sim.run_until(Time::us(1));
  EXPECT_EQ(reached, Time::ns(5));
  EXPECT_EQ(sim.now(), Time::ns(5));
}

TEST(SimulationBoundary, SameTimestampEventsAllRunAtDeadline) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(Time::ns(10), [&order, i] { order.push_back(i); });
  }
  sim.run_until(Time::ns(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace coolpim::sim
