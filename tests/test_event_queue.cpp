// Property tests for sim::EventQueue ordering and the Simulation stop() /
// run_until boundary semantics (previously only covered incidentally via
// test_sim's integration cases), plus the EventAction small-buffer contract:
// small captures stay inline (no heap allocation per event), large captures
// take the single-allocation heap path, and move-only callables work.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

// GCC pairs the inlined replacement operator new with std::free and reports a
// false mismatch; the replacement new below really does malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting allocator (this test is its own binary, so the override sees every
// allocation here).  Counter deltas are read only around the calls under test.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace coolpim::sim {
namespace {

std::uint64_t allocations() { return g_allocs.load(std::memory_order_relaxed); }

TEST(EventQueueProperty, FifoWithinEveryTimestamp) {
  // Schedule many events over a handful of timestamps in random order; within
  // each timestamp the pop order must equal the schedule order regardless of
  // how the timestamps interleave.
  Rng rng{0x5eed'f1f0};
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    std::map<std::int64_t, std::vector<int>> scheduled;  // time -> insert order
    std::map<std::int64_t, std::vector<int>> popped;
    for (int i = 0; i < 200; ++i) {
      const auto t_ns = static_cast<std::int64_t>(rng.next_below(8));
      scheduled[t_ns].push_back(i);
      q.schedule(Time::ns(static_cast<double>(t_ns)),
                 [&popped, t_ns, i] { popped[t_ns].push_back(i); });
    }
    Time last = Time::zero();
    while (!q.empty()) {
      auto [t, action] = q.pop();
      EXPECT_GE(t, last);  // never travels backwards
      last = t;
      action();
    }
    EXPECT_EQ(popped, scheduled);
  }
}

TEST(EventQueueProperty, NextTimeTracksEarliestEvent) {
  EventQueue q;
  q.schedule(Time::ns(30), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(30));
  q.schedule(Time::ns(10), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(10));
  q.schedule(Time::ns(20), [] {});
  EXPECT_EQ(q.next_time(), Time::ns(10));
  EXPECT_EQ(q.size(), 3u);
  (void)q.pop();
  EXPECT_EQ(q.next_time(), Time::ns(20));
}

TEST(EventQueueProperty, SchedulingAtLastPoppedTimeIsAllowed) {
  // An event may schedule a successor at the *current* time (same-timestamp
  // FIFO handles it); only strictly-past times are rejected.
  EventQueue q;
  q.schedule(Time::ns(10), [] {});
  (void)q.pop();
  EXPECT_NO_THROW(q.schedule(Time::ns(10), [] {}));
  EXPECT_THROW(q.schedule(Time::ps(9999), [] {}), SimError);
}

TEST(EventQueueProperty, ClearResetsSequenceAndPastGuard) {
  EventQueue q;
  q.schedule(Time::ns(50), [] {});
  (void)q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  // After clear() the queue accepts early timestamps again and FIFO order
  // restarts from a fresh sequence counter.
  std::vector<int> order;
  q.schedule(Time::ns(1), [&] { order.push_back(0); });
  q.schedule(Time::ns(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SimulationBoundary, EventExactlyAtDeadlineRuns) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(Time::ns(10), [&] { ++fired; });
  sim.run_until(Time::ns(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::ns(10));
  EXPECT_FALSE(sim.pending());
}

TEST(SimulationBoundary, EventJustPastDeadlineDoesNotRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(Time::ns(10) + Time::ps(1), [&] { ++fired; });
  sim.run_until(Time::ns(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Time::ns(10));  // clock still advances to the deadline
  EXPECT_TRUE(sim.pending());
}

TEST(SimulationBoundary, StopIsClearedByTheNextRun) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_in(Time::ns(1), [&] {
    fired.push_back(1);
    sim.stop();
  });
  sim.schedule_in(Time::ns(2), [&] { fired.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_TRUE(sim.pending());
  // stop() affects only the run that observed it; a fresh run resumes.
  sim.run_to_completion();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_FALSE(sim.pending());
}

TEST(SimulationBoundary, StopDoesNotRewindTheClock) {
  Simulation sim;
  sim.schedule_in(Time::ns(5), [&] { sim.stop(); });
  sim.schedule_in(Time::ns(50), [] {});
  const Time reached = sim.run_until(Time::us(1));
  EXPECT_EQ(reached, Time::ns(5));
  EXPECT_EQ(sim.now(), Time::ns(5));
}

TEST(EventAction, SmallCapturesStayInlineAndAllocationFree) {
  int sum = 0;
  int* target = &sum;  // one pointer: well under kInlineCapacity
  const std::uint64_t before = allocations();
  EventAction a{[target] { *target += 7; }};
  EXPECT_EQ(allocations(), before) << "small capture took the heap path";
  ASSERT_TRUE(a.is_inline());
  a();
  EXPECT_EQ(sum, 7);

  // Moving an inline action relocates in place -- still no allocation.
  EventAction b{std::move(a)};
  EXPECT_EQ(allocations(), before);
  EXPECT_TRUE(b.is_inline());
  b();
  EXPECT_EQ(sum, 14);
}

TEST(EventAction, LargeCapturesFallBackToOneHeapAllocation) {
  std::array<double, 32> payload{};  // 256 bytes > kInlineCapacity
  payload[31] = 42.0;
  double out = 0.0;
  const std::uint64_t before = allocations();
  EventAction a{[payload, &out] { out = payload[31]; }};
  EXPECT_EQ(allocations(), before + 1) << "expected exactly one allocation for the callable";
  EXPECT_FALSE(a.is_inline());

  // Moves of heap-backed actions shuffle the pointer, never reallocate.
  EventAction b{std::move(a)};
  EXPECT_EQ(allocations(), before + 1);
  b();
  EXPECT_EQ(out, 42.0);
}

TEST(EventAction, MoveOnlyCallablesAreAccepted) {
  // std::function rejects this capture; EventAction must not.
  auto flag = std::make_unique<int>(0);
  int* raw = flag.get();
  EventQueue q;
  q.schedule(Time::ns(1), [owned = std::move(flag)] { *owned = 1; });
  auto [t, action] = q.pop();
  (void)t;
  action();
  EXPECT_EQ(*raw, 1);
}

TEST(EventQueueProperty, SteadyScheduleAndPopIsAllocationFree) {
  // After reserve(), a self-rescheduling workload with small captures must
  // run with zero heap allocations -- the tentpole claim for the event
  // kernel (docs/PERFORMANCE.md).
  EventQueue q;
  q.reserve(64);
  std::uint64_t fired = 0;
  for (int i = 0; i < 32; ++i) {
    q.schedule(Time::ns(i), [&fired] { ++fired; });
  }

  const std::uint64_t before = allocations();
  Time now = Time::zero();
  for (int round = 0; round < 10'000; ++round) {
    auto [t, action] = q.pop();
    now = t;
    action();
    q.schedule(now + Time::ns(100), [&fired] { ++fired; });
  }
  EXPECT_EQ(allocations(), before) << "steady schedule/pop cycle allocated";
  EXPECT_EQ(fired, 10'000u);
}

TEST(EventQueueProperty, RandomizedStressMatchesSortedReference) {
  // Heavy mixed schedule/pop traffic against a stable-sorted oracle: the
  // (time, seq) pop order must be the unique total order regardless of heap
  // shape transitions (sift_up/sift_down across arity-4 levels).
  Rng rng{0xdead'4a7e};
  for (int trial = 0; trial < 10; ++trial) {
    EventQueue q;
    struct Ref {
      std::int64_t t_ns;
      int id;
    };
    std::vector<Ref> reference;
    std::vector<int> pop_order;
    int next_id = 0;
    std::int64_t now_ns = 0;

    for (int burst = 0; burst < 40; ++burst) {
      const auto n_push = static_cast<int>(rng.next_in(1, 25));
      for (int i = 0; i < n_push; ++i) {
        const std::int64_t t_ns = now_ns + static_cast<std::int64_t>(rng.next_below(50));
        const int id = next_id++;
        reference.push_back(Ref{t_ns, id});
        q.schedule(Time::ns(static_cast<double>(t_ns)),
                   [&pop_order, id] { pop_order.push_back(id); });
      }
      const auto n_pop = std::min<std::size_t>(q.size(), rng.next_below(20));
      for (std::size_t i = 0; i < n_pop; ++i) {
        auto [t, action] = q.pop();
        now_ns = t.as_ns() >= 0 ? static_cast<std::int64_t>(t.as_ns()) : 0;
        action();
      }
    }
    while (!q.empty()) q.pop().second();

    // Stable sort by time keeps insertion order within a timestamp -- exactly
    // the queue's FIFO guarantee.
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Ref& a, const Ref& b) { return a.t_ns < b.t_ns; });
    std::vector<int> expected;
    expected.reserve(reference.size());
    for (const Ref& r : reference) expected.push_back(r.id);
    EXPECT_EQ(pop_order, expected);
  }
}

TEST(SimulationBoundary, SameTimestampEventsAllRunAtDeadline) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(Time::ns(10), [&order, i] { order.push_back(i); });
  }
  sim.run_until(Time::ns(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace coolpim::sim
