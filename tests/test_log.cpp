// Tests for the leveled logger.
#include <gtest/gtest.h>

#include <vector>

#include "common/log.hpp"

namespace coolpim {
namespace {

struct Captured {
  LogLevel level;
  std::string message;
};

TEST(LoggerTest, ThresholdFilters) {
  Logger logger{LogLevel::kWarn};
  std::vector<Captured> seen;
  logger.set_sink([&](LogLevel level, const std::string& msg) {
    seen.push_back({level, msg});
  });
  logger.debug("not shown");
  logger.info("not shown either");
  logger.warn("warned");
  logger.error("errored");
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].level, LogLevel::kWarn);
  EXPECT_EQ(seen[0].message, "warned");
  EXPECT_EQ(seen[1].level, LogLevel::kError);
}

TEST(LoggerTest, OffSilencesEverything) {
  Logger logger{LogLevel::kOff};
  int count = 0;
  logger.set_sink([&](LogLevel, const std::string&) { ++count; });
  logger.error("even errors");
  EXPECT_EQ(count, 0);
}

TEST(LoggerTest, VariadicFormatting) {
  Logger logger{LogLevel::kInfo};
  std::string last;
  logger.set_sink([&](LogLevel, const std::string& msg) { last = msg; });
  logger.info("temp=", 85.5, " C at epoch ", 42);
  EXPECT_EQ(last, "temp=85.5 C at epoch 42");
}

TEST(LoggerTest, EnabledCheck) {
  Logger logger{LogLevel::kInfo};
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_threshold(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kWarn));
  EXPECT_EQ(logger.threshold(), LogLevel::kError);
}

TEST(LoggerTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace coolpim
