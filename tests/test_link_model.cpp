// Tests for the off-chip link FLIT accounting.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "hmc/link_model.hpp"

namespace coolpim::hmc {
namespace {

TEST(LinkModelTest, Hmc20FlitBudget) {
  const LinkModel link{hmc20_config()};
  // 480 GB/s raw aggregate / 16 B per FLIT = 30 GFLIT/s.
  EXPECT_NEAR(link.flits_per_sec(), 30e9, 1e6);
}

TEST(LinkModelTest, MaxDataBandwidthIs320) {
  // Paper Section III-B: because of packet header overhead the maximum data
  // bandwidth of HMC 2.0 is 320 GB/s out of 480 GB/s aggregate links.
  const LinkModel link{hmc20_config()};
  EXPECT_NEAR(link.max_data_bandwidth().as_gbps(), 320.0, 0.5);
}

TEST(LinkModelTest, FlitDemandMatchesTableOne) {
  const LinkModel link{hmc20_config()};
  TransactionMix mix;
  mix.reads_per_sec = 1e9;
  mix.writes_per_sec = 2e9;
  mix.pim_per_sec = 3e9;
  mix.pim_return_fraction = 0.5;
  // 1e9*6 + 2e9*6 + 3e9*(0.5*3 + 0.5*4) = 6+12+10.5 GFLIT/s.
  EXPECT_NEAR(link.flit_demand(mix), 28.5e9, 1e6);
  EXPECT_TRUE(link.feasible(mix));
}

TEST(LinkModelTest, AdmissionScaleClamps) {
  const LinkModel link{hmc20_config()};
  TransactionMix mix;
  mix.reads_per_sec = 10e9;  // 60 GFLIT/s demanded, 30 available
  EXPECT_NEAR(link.admission_scale(mix), 0.5, 1e-9);
  mix.reads_per_sec = 1e9;
  EXPECT_DOUBLE_EQ(link.admission_scale(mix), 1.0);
  EXPECT_DOUBLE_EQ(link.admission_scale(TransactionMix{}), 1.0);
}

TEST(LinkModelTest, RegularBandwidthWithPim) {
  const LinkModel link{hmc20_config()};
  // No PIM: full 320 GB/s; at 10 op/ns the links carry nothing else.
  EXPECT_NEAR(link.regular_bandwidth_with_pim(0.0).as_gbps(), 320.0, 0.5);
  EXPECT_NEAR(link.regular_bandwidth_with_pim(10e9).as_gbps(), 0.0, 0.5);
  // Monotone decreasing in the PIM rate.
  double prev = 1e18;
  for (double r = 0.0; r <= 6.5e9; r += 0.5e9) {
    const double bw = link.regular_bandwidth_with_pim(r).as_gbps();
    EXPECT_LT(bw, prev + 1e-9);
    prev = bw;
  }
}

TEST(LinkModelTest, InternalBandwidthExceedsExternalWithPim) {
  // Paper Section III-C: each PIM op performs an internal read + write, so
  // internal DRAM traffic can exceed the 320 GB/s external maximum.
  const LinkModel link{hmc20_config()};
  TransactionMix mix;
  mix.pim_per_sec = 1.3e9;
  mix.reads_per_sec = link.regular_bandwidth_with_pim(1.3e9).as_bytes_per_sec() / 64.0;
  EXPECT_TRUE(link.feasible(mix));
  EXPECT_GT(link.internal_dram_bandwidth(mix).as_gbps(), 320.0);
}

TEST(LinkModelTest, PayloadBandwidthExcludesPimWithoutReturn) {
  const LinkModel link{hmc20_config()};
  TransactionMix mix;
  mix.pim_per_sec = 1e9;
  EXPECT_DOUBLE_EQ(link.data_bandwidth(mix).as_gbps(), 0.0);
  mix.pim_return_fraction = 1.0;
  EXPECT_NEAR(link.data_bandwidth(mix).as_gbps(), 16.0, 1e-9);
}

TEST(LinkModelTest, RawBandwidthIsFlitsTimesSixteen) {
  const LinkModel link{hmc20_config()};
  TransactionMix mix;
  mix.reads_per_sec = 1e9;
  EXPECT_NEAR(link.raw_link_bandwidth(mix).as_gbps(), 96.0, 1e-9);  // 6 GFLIT * 16B
}

TEST(LinkModelTest, Hmc11SmallerBudget) {
  const LinkModel link{hmc11_config()};
  EXPECT_NEAR(link.max_data_bandwidth().as_gbps(), 60.0, 0.5);
}

TEST(LinkModelTest, InvalidReadFractionThrows) {
  const LinkModel link{hmc20_config()};
  EXPECT_THROW(link.regular_bandwidth_with_pim(0.0, 0.0, 1.5), ConfigError);
}

}  // namespace
}  // namespace coolpim::hmc
