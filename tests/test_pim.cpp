// Tests for the PIM instruction set definitions.
#include <gtest/gtest.h>

#include "hmc/pim.hpp"

namespace coolpim::hmc {
namespace {

TEST(PimTest, Classification) {
  EXPECT_EQ(classify(PimOpcode::kSignedAdd8), PimOpClass::kArithmetic);
  EXPECT_EQ(classify(PimOpcode::kSignedAdd16), PimOpClass::kArithmetic);
  EXPECT_EQ(classify(PimOpcode::kSwap), PimOpClass::kBitwise);
  EXPECT_EQ(classify(PimOpcode::kBitWrite), PimOpClass::kBitwise);
  EXPECT_EQ(classify(PimOpcode::kAnd), PimOpClass::kBoolean);
  EXPECT_EQ(classify(PimOpcode::kOr), PimOpClass::kBoolean);
  EXPECT_EQ(classify(PimOpcode::kCasEqual), PimOpClass::kComparison);
  EXPECT_EQ(classify(PimOpcode::kCasGreater), PimOpClass::kComparison);
  // GraphPIM floating-point extensions.
  EXPECT_EQ(classify(PimOpcode::kFpAdd), PimOpClass::kArithmetic);
  EXPECT_EQ(classify(PimOpcode::kFpMin), PimOpClass::kComparison);
}

TEST(PimTest, ReturningOpsUseFourFlitTransactions) {
  for (const auto op : {PimOpcode::kSwap, PimOpcode::kCasEqual, PimOpcode::kCasGreater}) {
    EXPECT_TRUE(returns_data(op));
    EXPECT_EQ(transaction_for(op), TransactionType::kPimWithReturn);
  }
  for (const auto op : {PimOpcode::kSignedAdd8, PimOpcode::kAnd, PimOpcode::kFpAdd}) {
    EXPECT_FALSE(returns_data(op));
    EXPECT_EQ(transaction_for(op), TransactionType::kPimNoReturn);
  }
}

TEST(PimTest, NamesAreUnique) {
  const PimOpcode all[] = {PimOpcode::kSignedAdd8, PimOpcode::kSignedAdd16, PimOpcode::kSwap,
                           PimOpcode::kBitWrite,   PimOpcode::kAnd,         PimOpcode::kOr,
                           PimOpcode::kCasEqual,   PimOpcode::kCasGreater,  PimOpcode::kFpAdd,
                           PimOpcode::kFpMin};
  for (const auto a : all) {
    for (const auto b : all) {
      if (a != b) EXPECT_NE(to_string(a), to_string(b));
    }
  }
}

TEST(PimTest, ClassNames) {
  EXPECT_EQ(to_string(PimOpClass::kArithmetic), "Arithmetic");
  EXPECT_EQ(to_string(PimOpClass::kComparison), "Comparison");
}

}  // namespace
}  // namespace coolpim::hmc
