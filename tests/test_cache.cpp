// Tests for the set-associative LRU cache model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "gpu/cache.hpp"

namespace coolpim::gpu {
namespace {

TEST(CacheTest, Geometry) {
  const Cache c{1024 * 1024, 16, 64};
  EXPECT_EQ(c.num_sets(), 1024u);
  EXPECT_EQ(c.ways(), 16u);
  EXPECT_EQ(c.line_bytes(), 64u);
}

TEST(CacheTest, InvalidGeometryThrows) {
  EXPECT_THROW((Cache{1000, 16, 64}), ConfigError);         // not a whole set count
  EXPECT_THROW((Cache{0, 1, 64}), ConfigError);             // empty cache
  EXPECT_THROW((Cache{3 * 16 * 64, 16, 64}), ConfigError);  // sets not a power of two
  EXPECT_THROW((Cache{1024, 0, 64}), ConfigError);          // zero ways
}

TEST(CacheTest, MissThenHit) {
  Cache c{16 * 1024, 4, 64};
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1020));  // same 64-byte line
  EXPECT_FALSE(c.access(0x1040));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEviction) {
  // Direct construction of a tiny 2-way, 1-set cache: capacity = 2 lines.
  Cache c{2 * 64, 2, 64};
  ASSERT_EQ(c.num_sets(), 1u);
  c.access(0 * 64);
  c.access(1 * 64);
  c.access(0 * 64);      // touch line 0: line 1 becomes LRU
  c.access(2 * 64);      // evicts line 1
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(1 * 64));
  EXPECT_TRUE(c.contains(2 * 64));
}

TEST(CacheTest, ContainsDoesNotDisturbState) {
  Cache c{2 * 64, 2, 64};
  c.access(0 * 64);
  c.access(1 * 64);
  // Probing 0 must NOT refresh its recency.
  EXPECT_TRUE(c.contains(0 * 64));
  c.access(2 * 64);  // LRU is line 0
  EXPECT_FALSE(c.contains(0 * 64));
}

TEST(CacheTest, FlushEmptiesEverything) {
  Cache c{16 * 1024, 4, 64};
  c.access(0x40);
  c.flush();
  EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheTest, WorkingSetSmallerThanCapacityAllHits) {
  Cache c{64 * 1024, 16, 64};
  // 32 KB working set inside a 64 KB cache: second sweep all hits.
  for (std::uint64_t a = 0; a < 32 * 1024; a += 64) c.access(a);
  c.reset_stats();
  for (std::uint64_t a = 0; a < 32 * 1024; a += 64) c.access(a);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 1.0);
}

TEST(CacheTest, StreamingNeverHits) {
  Cache c{16 * 1024, 4, 64};
  for (std::uint64_t a = 0; a < 4 * 1024 * 1024; a += 64) c.access(a);
  EXPECT_EQ(c.hits(), 0u);
}

// Property: for uniform random accesses over a footprint F with cache size C,
// the steady hit rate approaches min(1, C/F).
class RandomHitRate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomHitRate, MatchesCapacityRatio) {
  const std::uint64_t footprint = GetParam();
  const std::uint64_t capacity = 64 * 1024;
  Cache c{capacity, 16, 64};
  Rng rng{footprint};
  for (int i = 0; i < 50000; ++i) c.access(rng.next_below(footprint));
  c.reset_stats();
  for (int i = 0; i < 200000; ++i) c.access(rng.next_below(footprint));
  const double expected = std::min(1.0, static_cast<double>(capacity) / footprint);
  EXPECT_NEAR(c.hit_rate(), expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Footprints, RandomHitRate,
                         ::testing::Values(32u * 1024, 128u * 1024, 512u * 1024,
                                           2048u * 1024));

}  // namespace
}  // namespace coolpim::gpu
