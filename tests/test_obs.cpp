// Tests for the observability primitives: trace buffer span bookkeeping,
// JSON escaping and Chrome trace_event emission, the null-sink Trace handle,
// and the counter/gauge registry with its per-epoch marks.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "obs/counters.hpp"
#include "obs/names.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace coolpim::obs {
namespace {

TEST(TraceBufferTest, RecordsEventsInOrder) {
  TraceBuffer buf;
  buf.begin(Time::us(1), "sim", "pass");
  buf.instant(Time::us(2), "sys", "warning");
  buf.counter(Time::us(3), "sys", "rate", 1.5);
  buf.complete(Time::us(4), Time::us(2), "hmc", "serve");
  buf.end(Time::us(7));

  ASSERT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.events()[0].phase, 'B');
  EXPECT_EQ(buf.events()[0].cat, "sim");
  EXPECT_EQ(buf.events()[0].name, "pass");
  EXPECT_EQ(buf.events()[1].phase, 'i');
  EXPECT_EQ(buf.events()[2].phase, 'C');
  EXPECT_EQ(buf.events()[3].phase, 'X');
  EXPECT_EQ(buf.events()[3].dur, Time::us(2));
  EXPECT_EQ(buf.events()[4].phase, 'E');
}

TEST(TraceBufferTest, TracksOpenSpans) {
  TraceBuffer buf;
  EXPECT_EQ(buf.open_spans(), 0u);
  buf.begin(Time::us(0), "sim", "outer");
  buf.begin(Time::us(1), "sim", "inner");
  EXPECT_EQ(buf.open_spans(), 2u);
  buf.end(Time::us(2));
  EXPECT_EQ(buf.open_spans(), 1u);
  buf.end(Time::us(3));
  EXPECT_EQ(buf.open_spans(), 0u);
}

TEST(TraceHandleTest, DefaultConstructedIsNullSink) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  // All record calls must be harmless no-ops.
  trace.begin(Time::us(0), "sim", "pass");
  trace.instant(Time::us(1), "sys", "warn");
  trace.counter(Time::us(1), "sys", "rate", 1.0);
  trace.complete(Time::us(1), Time::us(1), "hmc", "serve");
  trace.end(Time::us(2));
}

TEST(TraceHandleTest, EnabledHandleWritesThrough) {
  TraceBuffer buf;
  Trace trace{&buf};
  EXPECT_TRUE(trace.enabled());
  trace.instant(Time::us(1), "sys", "warn", {{"level", 2}});
  ASSERT_EQ(buf.size(), 1u);
  ASSERT_EQ(buf.events()[0].args.size(), 1u);
  EXPECT_EQ(buf.events()[0].args[0].key, "level");
  EXPECT_EQ(buf.events()[0].args[0].value, "2");
  EXPECT_TRUE(buf.events()[0].args[0].number);
}

TEST(ScopedSpanTest, ReadsClockAtEntryAndExit) {
  TraceBuffer buf;
  Time clock = Time::us(10);
  {
    ScopedSpan span{Trace{&buf}, clock, "sim", "pass"};
    clock = Time::us(25);  // scope advances simulated time
  }
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.events()[0].phase, 'B');
  EXPECT_EQ(buf.events()[0].ts, Time::us(10));
  EXPECT_EQ(buf.events()[1].phase, 'E');
  EXPECT_EQ(buf.events()[1].ts, Time::us(25));
  EXPECT_EQ(buf.open_spans(), 0u);
}

TEST(TraceArgTest, RendersEachValueKind) {
  EXPECT_EQ(TraceArg("k", "text").value, "text");
  EXPECT_FALSE(TraceArg("k", "text").number);
  EXPECT_EQ(TraceArg("k", true).value, "true");
  EXPECT_TRUE(TraceArg("k", true).number);
  EXPECT_EQ(TraceArg("k", std::uint64_t{42}).value, "42");
  EXPECT_EQ(TraceArg("k", -7).value, "-7");
  EXPECT_TRUE(TraceArg("k", 1.25).number);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string{"a\x01" "b"}), "a\\u0001b");
}

TEST(ChromeTraceTest, EmitsMetadataAndEvents) {
  TraceBuffer buf;
  buf.complete(Time::us(1), Time::us(2), "hmc", "serve", {{"reads", std::uint64_t{3}}});
  std::ostringstream os;
  write_chrome_trace(os, {TraceTrack{7, "dc / Naive", &buf}});
  const std::string out = os.str();

  EXPECT_EQ(out.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(out.find("dc / Naive"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"hmc\""), std::string::npos);
  // Numeric args are bare, not quoted.
  EXPECT_NE(out.find("\"reads\":3"), std::string::npos);
  EXPECT_EQ(out.find("\"reads\":\"3\""), std::string::npos);
}

TEST(ChromeTraceTest, OutputIsByteStableAcrossCalls) {
  TraceBuffer buf;
  buf.begin(Time::ms(0.5), "sim", "pass", {{"epoch_us", 50.0}});
  buf.instant(Time::ms(0.75), "thermal", "warning_crossing", {{"direction", "rising"}});
  buf.end(Time::ms(1.0));
  std::ostringstream a;
  std::ostringstream b;
  write_chrome_trace(a, {TraceTrack{0, "t", &buf}});
  write_chrome_trace(b, {TraceTrack{0, "t", &buf}});
  EXPECT_EQ(a.str(), b.str());
}

TEST(CounterRegistryTest, CountersAndGaugesAreSeparate) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("gpu/pim_ops").add(10);
  reg.counter("gpu/pim_ops").add(5);
  reg.gauge("gpu/pim_ops").set(0.5);  // same name, different kind: no aliasing
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counter_value("gpu/pim_ops"), 15u);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("counter/gpu/pim_ops"), 15.0);
  EXPECT_EQ(snap.at("gauge/gpu/pim_ops"), 0.5);
}

TEST(CounterRegistryTest, ReferencesStayValidAcrossInserts) {
  CounterRegistry reg;
  CounterCell& cell = reg.counter("a/first");
  for (int i = 0; i < 100; ++i) reg.counter("b/filler_" + std::to_string(i));
  cell.add(3);
  EXPECT_EQ(reg.counter_value("a/first"), 3u);
}

TEST(CounterRegistryTest, MarksSnapshotAtSimulatedTimes) {
  CounterRegistry reg;
  reg.counter("sys/epochs").add();
  reg.mark(Time::ms(1));
  reg.counter("sys/epochs").add();
  reg.gauge("thermal/peak_dram_c").set(84.0);
  reg.mark(Time::ms(2));

  ASSERT_EQ(reg.marks().size(), 2u);
  EXPECT_EQ(reg.marks()[0].when, Time::ms(1));
  EXPECT_EQ(reg.marks()[0].values.at("counter/sys/epochs"), 1.0);
  // The gauge did not exist at the first mark.
  EXPECT_EQ(reg.marks()[0].values.count("gauge/thermal/peak_dram_c"), 0u);
  EXPECT_EQ(reg.marks()[1].values.at("counter/sys/epochs"), 2.0);
  EXPECT_EQ(reg.marks()[1].values.at("gauge/thermal/peak_dram_c"), 84.0);
}

TEST(SweepObserverTest, TasksKeepSubmissionOrderInOutput) {
  SweepObserver obs{/*want_trace=*/true, /*want_counters=*/true};
  auto* a = obs.add_task("dc", "Naive");
  auto* b = obs.add_task("pagerank", "CoolPIM (HW)");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->index, 0u);
  EXPECT_EQ(b->index, 1u);
  EXPECT_EQ(obs.task_count(), 2u);

  a->obs.trace_buffer.instant(Time::us(1), "sim", "from_a");
  b->obs.trace_buffer.instant(Time::us(1), "sim", "from_b");
  std::ostringstream os;
  obs.write_trace(os);
  const std::string out = os.str();
  // Track 0 (and its event) precede track 1 regardless of write order.
  EXPECT_LT(out.find("from_a"), out.find("from_b"));
  EXPECT_LT(out.find("\"pid\":0"), out.find("\"pid\":1"));
}

TEST(SweepObserverTest, CountersCsvHasDocumentedHeader) {
  SweepObserver obs{true, true};
  auto* rec = obs.add_task("dc", "Naive");
  rec->obs.counters.counter("sys/epochs").add(4);
  rec->obs.counters.mark(Time::ms(1));
  rec->exec_time = Time::ms(2);
  std::ostringstream os;
  obs.write_counters_csv(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("task,workload,scenario,t_ms,kind,counter,value\n"), 0u);
  EXPECT_NE(out.find("0,dc,Naive,1,counter,sys/epochs,4"), std::string::npos);
  // Final end-of-run snapshot stamped with exec_time.
  EXPECT_NE(out.find("0,dc,Naive,2,counter,sys/epochs,4"), std::string::npos);
}

// ---- Docs sync: obs::names vs docs/OBSERVABILITY.md -------------------------
// The exported name catalogue (src/obs/names.hpp) is the single source of
// truth for the counter/gauge/category namespace; this pins it to the schema
// reference in both directions: every exported name is documented, and every
// documented counter-style token still exists.

namespace {

std::string read_observability_doc() {
  std::ifstream doc{std::string{COOLPIM_DOCS_DIR} + "/OBSERVABILITY.md"};
  EXPECT_TRUE(doc.is_open()) << "docs/OBSERVABILITY.md missing";
  std::ostringstream ss;
  ss << doc.rdbuf();
  return ss.str();
}

}  // namespace

TEST(DocsSyncTest, EveryExportedCounterAndGaugeIsDocumented) {
  const std::string doc = read_observability_doc();
  for (const auto name : names::kAllCounters) {
    EXPECT_NE(doc.find("`" + std::string{name} + "`"), std::string::npos)
        << name << " not documented in docs/OBSERVABILITY.md";
  }
  for (const auto name : names::kAllGauges) {
    EXPECT_NE(doc.find("`" + std::string{name} + "`"), std::string::npos)
        << name << " not documented in docs/OBSERVABILITY.md";
  }
}

TEST(DocsSyncTest, EveryCategoryHasASchemaSection) {
  const std::string doc = read_observability_doc();
  for (const auto cat : names::kAllCategories) {
    EXPECT_NE(doc.find("### `" + std::string{cat} + "`"), std::string::npos)
        << "category " << cat << " has no trace-schema section in docs/OBSERVABILITY.md";
  }
}

TEST(DocsSyncTest, EveryDocumentedCounterStillExists) {
  // Scan backticked `prefix/name` tokens whose prefix matches an exported
  // counter/gauge namespace; each must still be in the catalogue (a doc row
  // for a renamed or deleted counter fails here).
  const std::string doc = read_observability_doc();
  std::set<std::string> known, prefixes;
  for (const auto name : names::kAllCounters) {
    known.emplace(name);
    prefixes.emplace(std::string{name.substr(0, name.find('/'))});
  }
  for (const auto name : names::kAllGauges) {
    known.emplace(name);
    prefixes.emplace(std::string{name.substr(0, name.find('/'))});
  }
  const std::regex token{R"(`([a-z_]+/[a-z_0-9]+)`)"};
  for (auto it = std::sregex_iterator{doc.begin(), doc.end(), token};
       it != std::sregex_iterator{}; ++it) {
    const std::string name = (*it)[1];
    const std::string prefix = name.substr(0, name.find('/'));
    if (prefixes.count(prefix) == 0) continue;  // paths, prose placeholders
    EXPECT_TRUE(known.count(name) == 1)
        << "docs/OBSERVABILITY.md documents `" << name
        << "` which is not in obs::names (renamed or removed?)";
  }
}

}  // namespace
}  // namespace coolpim::obs
