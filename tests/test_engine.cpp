// Tests for the GPU epoch execution engine.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "control/baselines.hpp"
#include "core/sw_dynt.hpp"
#include "gpu/engine.hpp"
#include "hmc/throughput_model.hpp"

namespace coolpim::gpu {
namespace {

LaunchSpec simple_launch(double instr, double reads, double atomics, std::uint64_t blocks) {
  LaunchSpec spec;
  spec.warp_instructions = instr;
  spec.mem.read_txns = reads;
  spec.mem.atomic_ops = atomics;
  spec.blocks = blocks;
  spec.warps = blocks * 8;
  return spec;
}

hmc::EpochService full_service(const hmc::EpochDemand& d) {
  hmc::EpochService s;
  s.served_fraction = 1.0;
  s.reads = d.reads;
  s.writes = d.writes;
  s.pim_ops = d.pim_ops;
  return s;
}

TEST(EngineTest, RunsToCompletion) {
  GpuConfig cfg;
  control::NaivePolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e6, 1e4, 1e4, 64)}, ctrl};
  EXPECT_FALSE(engine.finished());
  Time now = Time::zero();
  int epochs = 0;
  while (!engine.finished() && epochs < 100000) {
    const auto d = engine.plan(now, Time::us(10));
    now += engine.commit(now, Time::us(10), full_service(d));
    ++epochs;
  }
  EXPECT_TRUE(engine.finished());
  EXPECT_GT(epochs, 1);
}

TEST(EngineTest, LaunchOverheadProducesNoDemand) {
  GpuConfig cfg;
  control::NaivePolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e6, 1e4, 0, 8)}, ctrl};
  const auto d = engine.plan(Time::zero(), Time::us(10));
  EXPECT_DOUBLE_EQ(d.reads, 0.0);
  EXPECT_DOUBLE_EQ(d.pim_ops, 0.0);
  // Committing consumes only the overhead, not the whole window.
  const Time used = engine.commit(Time::zero(), Time::us(10), full_service(d));
  EXPECT_EQ(used, engine.launch_overhead);
}

TEST(EngineTest, NaiveControllerOffloadsAllAtomics) {
  GpuConfig cfg;
  control::NaivePolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e6, 0, 1e5, 64)}, ctrl};
  Time now = engine.launch_overhead;
  (void)engine.commit(Time::zero(), engine.launch_overhead, full_service({}));
  const auto d = engine.plan(now, Time::us(10));
  EXPECT_GT(d.pim_ops, 0.0);
  EXPECT_DOUBLE_EQ(d.reads, 0.0);  // no host RMW traffic
  EXPECT_DOUBLE_EQ(engine.pim_fraction(now), 1.0);
}

TEST(EngineTest, NonOffloadingTurnsAtomicsIntoRmw) {
  GpuConfig cfg;
  control::NonOffloadingPolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e6, 0, 1e5, 64)}, ctrl};
  Time now = engine.launch_overhead;
  (void)engine.commit(Time::zero(), engine.launch_overhead, full_service({}));
  const auto d = engine.plan(now, Time::us(10));
  EXPECT_DOUBLE_EQ(d.pim_ops, 0.0);
  EXPECT_GT(d.reads, 0.0);
  EXPECT_NEAR(d.reads, d.writes, 1e-9);  // one read + one write per RMW
  EXPECT_DOUBLE_EQ(engine.pim_fraction(now), 0.0);
}

TEST(EngineTest, HostAtomicCoalescingReducesRmwTraffic) {
  GpuConfig cfg;
  cfg.host_atomic_coalescing = 0.5;
  control::NonOffloadingPolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e6, 0, 1e5, 64)}, ctrl};
  (void)engine.commit(Time::zero(), engine.launch_overhead, full_service({}));
  const auto half = engine.plan(engine.launch_overhead, Time::us(10));

  GpuConfig cfg2;
  cfg2.host_atomic_coalescing = 1.0;
  control::NonOffloadingPolicy ctrl2;
  ExecutionEngine engine2{cfg2, {simple_launch(1e6, 0, 1e5, 64)}, ctrl2};
  (void)engine2.commit(Time::zero(), engine2.launch_overhead, full_service({}));
  const auto full = engine2.plan(engine2.launch_overhead, Time::us(10));
  EXPECT_NEAR(half.reads, 0.5 * full.reads, 1e-6);
}

TEST(EngineTest, TokenPoolLimitsPimFraction) {
  GpuConfig cfg;
  core::SwDynTConfig sc;
  sc.use_static_init = false;
  sc.eq1.max_blocks = 32;  // pool of 32 vs 128 resident blocks
  core::SwDynT ctrl{sc};
  ExecutionEngine engine{cfg, {simple_launch(1e7, 0, 1e6, 1000)}, ctrl};
  (void)engine.commit(Time::zero(), engine.launch_overhead, full_service({}));
  const double p = engine.pim_fraction(engine.launch_overhead);
  EXPECT_NEAR(p, 32.0 / 128.0, 0.02);
}

TEST(EngineTest, ServiceFractionSlowsProgress) {
  GpuConfig cfg;
  control::NaivePolicy c1, c2;
  ExecutionEngine fast{cfg, {simple_launch(1e7, 1e5, 0, 64)}, c1};
  ExecutionEngine slow{cfg, {simple_launch(1e7, 1e5, 0, 64)}, c2};
  auto run = [](ExecutionEngine& e, double served) {
    Time now = Time::zero();
    int epochs = 0;
    while (!e.finished() && epochs < 200000) {
      auto d = e.plan(now, Time::us(10));
      auto s = full_service(d);
      s.served_fraction = served;
      s.reads *= served;
      s.pim_ops *= served;
      now += e.commit(now, Time::us(10), s);
      ++epochs;
    }
    return now;
  };
  EXPECT_LT(run(fast, 1.0), run(slow, 0.5));
}

TEST(EngineTest, CommittedOpTotalsMatchLaunchAtomics) {
  // Per-epoch pim_ops/host_atomics increments are fractional; the engine
  // accumulates the exact double totals and emits integer deltas, so the
  // counters must match the launch's atomic budget to within rounding of the
  // final sum -- not drift by up to half an op per epoch the way per-epoch
  // truncation would.
  const double atomics = 123457.0;
  auto run = [](ExecutionEngine& engine) {
    Time now = Time::zero();
    int epochs = 0;
    while (!engine.finished() && epochs < 200000) {
      const auto d = engine.plan(now, Time::us(10));
      now += engine.commit(now, Time::us(10), full_service(d));
      ++epochs;
    }
    ASSERT_TRUE(engine.finished());
    ASSERT_GT(epochs, 10);  // the total really was split across many epochs
  };
  {
    GpuConfig cfg;
    control::NaivePolicy ctrl;  // pim_fraction == 1: everything offloads
    ExecutionEngine engine{cfg, {simple_launch(1e7, 0, atomics, 64)}, ctrl};
    run(engine);
    EXPECT_NEAR(static_cast<double>(engine.stats().counter_value("pim_ops")), atomics, 1.0);
    EXPECT_EQ(engine.stats().counter_value("host_atomics"), 0u);
  }
  {
    GpuConfig cfg;
    control::NonOffloadingPolicy ctrl;  // pim_fraction == 0: all host RMW
    ExecutionEngine engine{cfg, {simple_launch(1e7, 0, atomics, 64)}, ctrl};
    run(engine);
    EXPECT_NEAR(static_cast<double>(engine.stats().counter_value("host_atomics")), atomics,
                1.0);
    EXPECT_EQ(engine.stats().counter_value("pim_ops"), 0u);
  }
}

TEST(EngineTest, RestartReplaysFromTheTop) {
  GpuConfig cfg;
  control::NaivePolicy ctrl;
  ExecutionEngine engine{cfg, {simple_launch(1e5, 1e3, 0, 8), simple_launch(1e5, 1e3, 0, 8)},
                         ctrl};
  Time now = Time::zero();
  while (!engine.finished()) {
    const auto d = engine.plan(now, Time::us(10));
    now += engine.commit(now, Time::us(10), full_service(d));
  }
  EXPECT_EQ(engine.stats().counter_value("kernel_launches"), 2u);
  engine.restart();
  EXPECT_FALSE(engine.finished());
  EXPECT_EQ(engine.current_launch(), 0u);
}

TEST(EngineTest, BuildLaunchesFromProfile) {
  graph::WorkloadProfile profile;
  profile.graph_vertices = 1024;
  graph::IterationProfile it;
  it.work_threads = 1000;
  it.compute_warp_instructions = 5000;
  it.atomic_ops = 320;
  it.struct_scan_bytes = 6400;
  profile.iterations.push_back(it);

  GpuConfig cfg;
  const CacheHitModel cache{cfg, 64ull * 1024 * 1024};
  const auto launches = build_launches(profile, cfg, cache);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_EQ(launches[0].blocks, 4u);  // ceil(1000 / 256)
  EXPECT_EQ(launches[0].warps, 32u);  // ceil(1000 / 32)
  EXPECT_NEAR(launches[0].warp_instructions, 5000.0 + 320.0 / 32.0, 1e-9);
  EXPECT_DOUBLE_EQ(launches[0].mem.atomic_ops, 320.0);
}

TEST(EngineTest, EmptyWorkloadThrows) {
  GpuConfig cfg;
  control::NaivePolicy ctrl;
  EXPECT_THROW((ExecutionEngine{cfg, {}, ctrl}), ConfigError);
}

}  // namespace
}  // namespace coolpim::gpu
