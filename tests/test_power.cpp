// Tests for the HMC power model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "power/energy_model.hpp"

namespace coolpim::power {
namespace {

TEST(PowerModelTest, BandwidthProportional) {
  const EnergyParams ep;
  OperatingPoint op;
  op.link_raw = Bandwidth::gbps(480.0);
  op.dram_internal = Bandwidth::gbps(320.0);
  const auto pb = compute_power(ep, op);
  // power = energy/bit * bandwidth (paper Section V-A).
  EXPECT_NEAR(pb.logic_dynamic.value(), 6.78e-12 * 480e9 * 8, 1e-6);
  EXPECT_NEAR(pb.dram_dynamic.value(), 3.7e-12 * 320e9 * 8, 1e-6);
}

TEST(PowerModelTest, FuPowerFormula) {
  // Power(FU) = E * FU_width * PIM_rate with a 128-bit FU (paper III-C).
  const EnergyParams ep;
  OperatingPoint op;
  op.pim_ops_per_sec = 1.3e9;
  const auto pb = compute_power(ep, op);
  EXPECT_NEAR(pb.fu.value(), ep.fu_energy_per_bit.value() * 128.0 * 1.3e9, 1e-9);
  EXPECT_NEAR(fu_op_energy(ep).value(), ep.fu_energy_per_bit.value() * 128.0, 1e-18);
}

TEST(PowerModelTest, IdlePowerIsBackgroundOnly) {
  const EnergyParams ep;
  const auto pb = compute_power(ep, OperatingPoint{});
  EXPECT_DOUBLE_EQ(pb.logic_dynamic.value(), 0.0);
  EXPECT_DOUBLE_EQ(pb.dram_dynamic.value(), 0.0);
  EXPECT_DOUBLE_EQ(pb.fu.value(), 0.0);
  EXPECT_GT(pb.total().value(), 0.0);
  EXPECT_DOUBLE_EQ(pb.total().value(),
                   ep.background_logic.value() + ep.background_dram.value());
}

TEST(PowerModelTest, BreakdownTotalsAreConsistent) {
  const EnergyParams ep;
  OperatingPoint op;
  op.link_raw = Bandwidth::gbps(100);
  op.dram_internal = Bandwidth::gbps(200);
  op.pim_ops_per_sec = 1e9;
  const auto pb = compute_power(ep, op);
  EXPECT_NEAR(pb.total().value(), pb.logic_total().value() + pb.dram_total().value(), 1e-12);
  EXPECT_NEAR(pb.logic_total().value(),
              pb.logic_dynamic.value() + pb.logic_background.value() + pb.fu.value(), 1e-12);
}

TEST(PowerModelTest, HotPhaseEnergyPenalty) {
  // Above 85 C the refresh doubles and leakage grows: energy per bit RISES
  // while throughput falls (the paper's central derating argument).
  const EnergyParams ep;
  OperatingPoint op;
  op.link_raw = Bandwidth::gbps(300);
  op.dram_internal = Bandwidth::gbps(400);
  const auto normal = compute_power(ep, op, 0);
  const auto extended = compute_power(ep, op, 1);
  const auto critical = compute_power(ep, op, 2);
  EXPECT_GT(extended.dram_dynamic.value(), normal.dram_dynamic.value());
  EXPECT_GT(critical.dram_dynamic.value(), extended.dram_dynamic.value());
  EXPECT_GT(extended.dram_background.value(), normal.dram_background.value());
  EXPECT_GT(extended.logic_dynamic.value(), normal.logic_dynamic.value());
}

TEST(PowerModelTest, InvalidInputsThrow) {
  const EnergyParams ep;
  OperatingPoint op;
  op.pim_ops_per_sec = -1.0;
  EXPECT_THROW(compute_power(ep, op), ConfigError);
  op.pim_ops_per_sec = 0.0;
  EXPECT_THROW(compute_power(ep, op, 3), ConfigError);
  EXPECT_THROW(compute_power(ep, op, -1), ConfigError);
}

// Property: total power is monotone in each operating-point component.
class PowerMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PowerMonotone, MonotoneInEachAxis) {
  const EnergyParams ep;
  const int axis = GetParam();
  double prev = -1.0;
  for (double x = 0.0; x <= 5.0; x += 0.5) {
    OperatingPoint op;
    if (axis == 0) op.link_raw = Bandwidth::gbps(100 * x);
    if (axis == 1) op.dram_internal = Bandwidth::gbps(100 * x);
    if (axis == 2) op.pim_ops_per_sec = 1e9 * x;
    const double total = compute_power(ep, op).total().value();
    EXPECT_GE(total, prev);
    prev = total;
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, PowerMonotone, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace coolpim::power
