// Full-system integration tests: the six scenarios on a small LDBC-like
// graph must reproduce the paper's qualitative results (Figs. 10-13).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <iterator>
#include <map>
#include <set>

#include "sys/system.hpp"

namespace coolpim::sys {
namespace {

class SystemFixture : public ::testing::Test {
 protected:
  static const WorkloadSet& workloads() {
    static const WorkloadSet set{18, 1};  // smallest scale that saturates bandwidth
                                          // with cache-resident properties ruled out
    return set;
  }

  static RunResult run(const std::string& workload, Scenario scenario) {
    SystemConfig cfg;
    cfg.scenario = scenario;
    System system{cfg};
    return system.run(workloads().profile(workload));
  }

  static const std::map<Scenario, RunResult>& dc_results() {
    static const std::map<Scenario, RunResult> results = [] {
      std::map<Scenario, RunResult> r;
      for (const auto s : kAllScenarios) r.emplace(s, run("dc", s));
      return r;
    }();
    return results;
  }
};

TEST_F(SystemFixture, AllScenariosRunAndProduceResults) {
  // kAllScenarios is the canonical iteration set for matrices and CLIs; it
  // must contain every scenario exactly once (kBwThrottle was once missing),
  // including the predictive controller-zoo members.
  std::set<Scenario> distinct{std::begin(kAllScenarios), std::end(kAllScenarios)};
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(distinct.count(Scenario::kBwThrottle), 1u);
  EXPECT_EQ(distinct.count(Scenario::kMpc), 1u);
  EXPECT_EQ(distinct.count(Scenario::kPolicyTable), 1u);

  ASSERT_EQ(dc_results().size(), 8u);
  for (const auto& [scenario, r] : dc_results()) {
    SCOPED_TRACE(to_string(scenario));
    EXPECT_GT(r.exec_time, Time::zero());
    EXPECT_GT(r.link_raw_bytes, 0.0);
    EXPECT_GT(r.peak_dram_temp.value(), 0.0);
    EXPECT_EQ(r.workload, "dc");
    EXPECT_EQ(r.scenario, to_string(scenario));
  }
}

TEST_F(SystemFixture, BaselineNeverOffloads) {
  const auto& r = dc_results().at(Scenario::kNonOffloading);
  EXPECT_EQ(r.pim_ops, 0u);
  EXPECT_GT(r.exec_time, Time::zero());
}

TEST_F(SystemFixture, IdealThermalIsFastest) {
  const auto& ideal = dc_results().at(Scenario::kIdealThermal);
  for (const auto& [scenario, r] : dc_results()) {
    EXPECT_LE(ideal.exec_time, r.exec_time) << to_string(scenario);
  }
}

TEST_F(SystemFixture, CoolPimBeatsNaiveOnHotWorkload) {
  // The paper's headline: thermal-aware throttling outperforms naive
  // offloading once the thermal issue triggers.
  const auto& naive = dc_results().at(Scenario::kNaiveOffloading);
  const auto& sw = dc_results().at(Scenario::kCoolPimSw);
  const auto& hw = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_LT(sw.exec_time, naive.exec_time);
  EXPECT_LT(hw.exec_time, naive.exec_time);
}

TEST_F(SystemFixture, CoolPimStaysWithinNormalRange) {
  // Fig. 13: CoolPIM keeps peak DRAM temperature below 85 C while naive
  // offloading exceeds it.
  const auto& naive = dc_results().at(Scenario::kNaiveOffloading);
  const auto& sw = dc_results().at(Scenario::kCoolPimSw);
  const auto& hw = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_GT(naive.peak_dram_temp.value(), 85.0);
  EXPECT_LE(sw.peak_dram_temp.value(), 85.5);
  EXPECT_LE(hw.peak_dram_temp.value(), 85.5);
}

TEST_F(SystemFixture, CoolPimKeepsPimRateUnderBudget) {
  // Fig. 12: source throttling keeps the rate below the 1.3 op/ns budget.
  const auto& naive = dc_results().at(Scenario::kNaiveOffloading);
  const auto& sw = dc_results().at(Scenario::kCoolPimSw);
  const auto& hw = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_GT(naive.avg_pim_rate_op_per_ns(), 1.3);
  EXPECT_LE(sw.avg_pim_rate_op_per_ns(), 1.4);
  EXPECT_LE(hw.avg_pim_rate_op_per_ns(), 1.4);
}

TEST_F(SystemFixture, OffloadingSavesBandwidth) {
  // Fig. 11: naive offloading moves the least data; CoolPIM sits between
  // naive and the baseline.
  const auto& base = dc_results().at(Scenario::kNonOffloading);
  const auto& naive = dc_results().at(Scenario::kNaiveOffloading);
  const auto& hw = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_LT(naive.consumption_bytes(), base.consumption_bytes());
  EXPECT_LT(hw.consumption_bytes(), base.consumption_bytes());
  EXPECT_GT(hw.consumption_bytes(), naive.consumption_bytes());
}

TEST_F(SystemFixture, NaiveSeesThermalWarningsCoolPimAvoidsDerating) {
  const auto& naive = dc_results().at(Scenario::kNaiveOffloading);
  const auto& hw = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_GT(naive.thermal_warnings, 0u);
  EXPECT_GT(naive.time_above_normal, Time::zero());
  EXPECT_EQ(hw.time_above_normal, Time::zero());
}

TEST_F(SystemFixture, IdealThermalNeverHeats) {
  const auto& ideal = dc_results().at(Scenario::kIdealThermal);
  EXPECT_LE(ideal.peak_dram_temp.value(), 25.0 + 1e-9);
  EXPECT_EQ(ideal.thermal_warnings, 0u);
}

TEST_F(SystemFixture, DeterministicAcrossRuns) {
  const auto a = run("pagerank", Scenario::kCoolPimHw);
  const auto b = run("pagerank", Scenario::kCoolPimHw);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.pim_ops, b.pim_ops);
  EXPECT_DOUBLE_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
}

TEST_F(SystemFixture, LowIntensityWorkloadUnaffectedByThrottling) {
  // kcore never triggers the thermal issue, so naive and CoolPIM (HW) match
  // (paper Section V-B.1).
  const auto naive = run("kcore", Scenario::kNaiveOffloading);
  const auto hw = run("kcore", Scenario::kCoolPimHw);
  EXPECT_EQ(hw.exec_time, naive.exec_time);
  EXPECT_EQ(hw.thermal_warnings, 0u);
}

TEST_F(SystemFixture, TimeSeriesRecorded) {
  const auto& r = dc_results().at(Scenario::kNaiveOffloading);
  EXPECT_FALSE(r.pim_rate.empty());
  EXPECT_FALSE(r.dram_temp.empty());
  EXPECT_FALSE(r.link_bw.empty());
  EXPECT_EQ(r.pim_rate.size(), r.dram_temp.size());
}

TEST_F(SystemFixture, StartTempOverrideRespected) {
  SystemConfig cfg;
  cfg.scenario = Scenario::kNaiveOffloading;
  cfg.warm_start = false;
  cfg.start_temp_override = 84.0;
  System system{cfg};
  const auto r = system.run(workloads().profile("dc"));
  EXPECT_NEAR(r.start_dram_temp.value(), 84.0, 0.5);
}

TEST(WorkloadSetTest, AllTenWorkloadsPresent) {
  const WorkloadSet set{12, 3};
  EXPECT_EQ(workload_names().size(), 10u);
  for (const auto& name : workload_names()) {
    const auto& p = set.profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.iterations.size(), 0u) << name;
  }
  EXPECT_THROW(set.profile("nonexistent"), ConfigError);
}

TEST_F(SystemFixture, BwThrottleCoolsButSlowerThanCoolPim) {
  // The blanket alternative also avoids derating, but on mixed workloads it
  // penalizes regular traffic (see bench_ablation_alternatives).
  SystemConfig cfg;
  cfg.scenario = Scenario::kBwThrottle;
  System system{cfg};
  const auto r = system.run(workloads().profile("sssp-dwc"));
  EXPECT_LE(r.peak_dram_temp.value(), 86.0);
  const auto hw = run("sssp-dwc", Scenario::kCoolPimHw);
  EXPECT_LE(hw.exec_time, r.exec_time);
}

TEST_F(SystemFixture, PeiPolicySlowerThanGraphPim) {
  SystemConfig pei;
  pei.scenario = Scenario::kCoolPimHw;
  pei.gpu.offload_policy = gpu::OffloadPolicy::kCoherentWriteback;
  System system{pei};
  const auto pei_run = system.run(workloads().profile("dc"));
  const auto graphpim = dc_results().at(Scenario::kCoolPimHw);
  EXPECT_GE(pei_run.exec_time, graphpim.exec_time);
  EXPECT_GT(pei_run.consumption_bytes(), graphpim.consumption_bytes());
}

TEST_F(SystemFixture, HighEndCoolingRemovesTheThrottleNeed) {
  SystemConfig cfg;
  cfg.scenario = Scenario::kNaiveOffloading;
  cfg.cooling = power::CoolingType::kHighEndActive;
  System system{cfg};
  const auto r = system.run(workloads().profile("dc"));
  // With the 0.2 C/W sink even naive offloading stays in the normal range
  // and matches the ideal-thermal speed.
  EXPECT_LT(r.peak_dram_temp.value(), 85.0);
  const auto& ideal = dc_results().at(Scenario::kIdealThermal);
  EXPECT_NEAR(r.exec_time.as_ms(), ideal.exec_time.as_ms(),
              0.1 * ideal.exec_time.as_ms());
}

TEST_F(SystemFixture, TargetRateConfigShiftsTheEquilibrium) {
  SystemConfig strict;
  strict.scenario = Scenario::kCoolPimSw;
  strict.target_rate_op_per_ns = 0.5;
  System system{strict};
  const auto r = system.run(workloads().profile("dc"));
  const auto& standard = dc_results().at(Scenario::kCoolPimSw);
  EXPECT_LT(r.avg_pim_rate_op_per_ns(), standard.avg_pim_rate_op_per_ns());
}

TEST_F(SystemFixture, EnergyTracksExecution) {
  const auto& base = dc_results().at(Scenario::kNonOffloading);
  EXPECT_GT(base.cube_energy_j, 0.0);
  EXPECT_GT(base.fan_energy_j, 0.0);
}

TEST(SystemConfigTest, MissingGraphMetadataRejected) {
  SystemConfig cfg;
  System system{cfg};
  graph::WorkloadProfile empty;
  EXPECT_THROW((void)system.run(empty), ConfigError);
}

}  // namespace
}  // namespace coolpim::sys
