// Tests for the parallel experiment runner: pool mechanics, stable task
// identity, the process-wide result cache, and the headline determinism
// property -- jobs=1 and jobs=8 sweeps are bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "runner/experiment.hpp"
#include "runner/pool.hpp"

namespace coolpim::runner {
namespace {

TEST(PoolTest, RunsEverySubmittedTask) {
  Pool pool{4};
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(PoolTest, ParallelForCoversEveryIndexOnce) {
  Pool pool{8};
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PoolTest, WaitIsReusable) {
  Pool pool{3};
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  pool.submit([&] { count.fetch_add(1); });
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(PoolTest, SingleJobRunsOnTheCallingThread) {
  Pool pool{1};
  std::set<std::thread::id> ids;
  for (int i = 0; i < 8; ++i) pool.submit([&] { ids.insert(std::this_thread::get_id()); });
  pool.wait();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(PoolTest, FirstTaskExceptionPropagatesFromWait) {
  Pool pool{4};
  std::atomic<int> survivors{0};
  pool.submit([] { throw ConfigError("boom"); });
  for (int i = 0; i < 10; ++i) pool.submit([&] { survivors.fetch_add(1); });
  EXPECT_THROW(pool.wait(), ConfigError);
  EXPECT_EQ(survivors.load(), 10);  // one failure does not cancel the sweep
}

TEST(PoolTest, DefaultJobsHonoursEnvironment) {
  ASSERT_EQ(setenv("COOLPIM_JOBS", "3", 1), 0);
  EXPECT_EQ(Pool::default_jobs(), 3u);
  ASSERT_EQ(setenv("COOLPIM_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(Pool::default_jobs(), 1u);  // garbage falls back to hardware
  ASSERT_EQ(unsetenv("COOLPIM_JOBS"), 0);
  EXPECT_GE(Pool::default_jobs(), 1u);
}

TEST(ExperimentKeyTest, StableAndSensitiveToEveryAxis) {
  const sys::WorkloadSet set{12, 3};
  sys::SystemConfig cfg;
  const auto base = experiment_key(set, "dc", cfg);
  EXPECT_EQ(base, experiment_key(set, "dc", cfg));  // repeatable

  EXPECT_NE(base, experiment_key(set, "pagerank", cfg));
  sys::SystemConfig other = cfg;
  other.scenario = sys::Scenario::kNaiveOffloading;
  EXPECT_NE(base, experiment_key(set, "dc", other));
  other = cfg;
  other.hw_control_factor = 16;
  EXPECT_NE(base, experiment_key(set, "dc", other));
  other = cfg;
  other.cooling = power::CoolingType::kHighEndActive;
  EXPECT_NE(base, experiment_key(set, "dc", other));
  other = cfg;
  other.gpu.num_sms = 32;
  EXPECT_NE(base, experiment_key(set, "dc", other));

  // run_seed is derived *from* the key, so it must not feed back into it.
  other = cfg;
  other.run_seed = 12345;
  EXPECT_EQ(base, experiment_key(set, "dc", other));

  const sys::WorkloadSet other_seed{12, 4};
  EXPECT_NE(base, experiment_key(other_seed, "dc", cfg));
}

TEST(ExperimentKeyTest, DerivedSeedsDifferAcrossTasks) {
  const sys::WorkloadSet set{12, 3};
  sys::SystemConfig cfg;
  std::set<std::uint64_t> seeds;
  for (const auto s : sys::kAllScenarios) {
    cfg.scenario = s;
    seeds.insert(derive_seed(experiment_key(set, "dc", cfg)));
  }
  EXPECT_EQ(seeds.size(), std::size(sys::kAllScenarios));
}

class RunnerFixture : public ::testing::Test {
 protected:
  static const sys::WorkloadSet& set() {
    static const sys::WorkloadSet s{14, 1};
    return s;
  }
};

void expect_identical(const sys::RunResult& a, const sys::RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.exec_time, b.exec_time);
  // Doubles compared bit-for-bit: the determinism contract is *bit*-identical
  // results, not merely close ones.
  EXPECT_EQ(a.link_data_bytes, b.link_data_bytes);
  EXPECT_EQ(a.link_raw_bytes, b.link_raw_bytes);
  EXPECT_EQ(a.dram_internal_bytes, b.dram_internal_bytes);
  EXPECT_EQ(a.pim_ops, b.pim_ops);
  EXPECT_EQ(a.host_atomics, b.host_atomics);
  EXPECT_EQ(a.cube_energy_j, b.cube_energy_j);
  EXPECT_EQ(a.fan_energy_j, b.fan_energy_j);
  EXPECT_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
  EXPECT_EQ(a.start_dram_temp.value(), b.start_dram_temp.value());
  EXPECT_EQ(a.thermal_warnings, b.thermal_warnings);
  EXPECT_EQ(a.shut_down, b.shut_down);
  EXPECT_EQ(a.time_above_normal, b.time_above_normal);
}

TEST_F(RunnerFixture, MatrixIsBitIdenticalAcrossJobCounts) {
  // The headline property: the full scenario matrix for two workloads gives
  // field-for-field identical results at jobs=1 and jobs=8, with the cache
  // disabled so both sweeps really execute every simulation.
  const std::vector<std::string> workloads{"dc", "pagerank"};
  const std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                             std::end(sys::kAllScenarios)};
  RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  RunOptions wide;
  wide.jobs = 8;
  wide.use_cache = false;

  const auto a = run_matrix(set(), workloads, scenarios, {}, serial);
  const auto b = run_matrix(set(), workloads, scenarios, {}, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload, b[i].workload);
    ASSERT_EQ(a[i].runs.size(), scenarios.size());
    for (const auto s : scenarios) {
      SCOPED_TRACE(std::string{to_string(s)} + " / " + a[i].workload);
      expect_identical(a[i].runs.at(s), b[i].runs.at(s));
    }
  }
}

TEST_F(RunnerFixture, SweepOrderIndependence) {
  // Reversing submission order must not change any result (seeds derive from
  // task identity, not from execution order).
  std::vector<Experiment> forward;
  for (const auto s : sys::kAllScenarios) {
    Experiment e;
    e.workload = "dc";
    e.config.scenario = s;
    forward.push_back(e);
  }
  std::vector<Experiment> backward{forward.rbegin(), forward.rend()};
  RunOptions opt;
  opt.jobs = 4;
  opt.use_cache = false;
  const auto fwd = run_sweep(set(), forward, opt);
  const auto bwd = run_sweep(set(), backward, opt);
  ASSERT_EQ(fwd.size(), bwd.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    expect_identical(fwd[i], bwd[fwd.size() - 1 - i]);
  }
}

TEST_F(RunnerFixture, CacheServesRepeatRuns) {
  clear_result_cache();
  const auto first = run_one(set(), "dc", sys::Scenario::kCoolPimHw);
  const auto after_first = cache_stats();
  EXPECT_EQ(after_first.entries, 1u);
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  const auto second = run_one(set(), "dc", sys::Scenario::kCoolPimHw);
  const auto after_second = cache_stats();
  EXPECT_EQ(after_second.entries, 1u);
  EXPECT_EQ(after_second.hits, 1u);
  expect_identical(first, second);

  // A different config must miss.
  sys::SystemConfig tweaked;
  tweaked.hw_control_factor = 16;
  (void)run_one(set(), "dc", sys::Scenario::kCoolPimHw, tweaked);
  EXPECT_EQ(cache_stats().entries, 2u);
  clear_result_cache();
  EXPECT_EQ(cache_stats().entries, 0u);
}

TEST_F(RunnerFixture, CachedAndUncachedResultsAgree) {
  clear_result_cache();
  RunOptions uncached;
  uncached.use_cache = false;
  const auto direct = run_one(set(), "kcore", sys::Scenario::kNaiveOffloading, {}, uncached);
  const auto via_cache = run_one(set(), "kcore", sys::Scenario::kNaiveOffloading);
  expect_identical(direct, via_cache);
  clear_result_cache();
}

}  // namespace
}  // namespace coolpim::runner
