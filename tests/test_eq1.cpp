// Tests for the Equation 1 static PTP initialization.
#include <gtest/gtest.h>

#include "core/eq1.hpp"
#include "common/error.hpp"

namespace coolpim::core {
namespace {

TEST(Eq1Test, ForwardEvaluation) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 10.0;
  in.pim_intensity = 0.2;
  in.max_blocks = 100;
  in.divergent_warp_ratio = 0.5;
  // rate = 10 * 0.2 * (50/100) * (1 - 0.5) = 0.5 op/ns.
  EXPECT_NEAR(estimate_pim_rate(in, 50), 0.5, 1e-12);
  // Pool size clamps at max_blocks in the forward direction too.
  EXPECT_NEAR(estimate_pim_rate(in, 1000), estimate_pim_rate(in, 100), 1e-12);
}

TEST(Eq1Test, SolveForTarget) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 10.0;
  in.pim_intensity = 0.26;
  in.max_blocks = 128;
  in.divergent_warp_ratio = 0.0;
  in.target_rate_op_per_ns = 1.3;
  in.margin_blocks = 0;
  // per-block rate = 2.6/128; 1.3 / (2.6/128) = 64 blocks.
  EXPECT_EQ(initial_ptp_size(in), 64u);
  // With the paper's margin of 4 blocks:
  in.margin_blocks = 4;
  EXPECT_EQ(initial_ptp_size(in), 68u);
}

TEST(Eq1Test, DivergenceShrinksEstimatedRate) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 10.0;
  in.pim_intensity = 0.26;
  in.max_blocks = 128;
  in.margin_blocks = 0;
  in.divergent_warp_ratio = 0.0;
  const auto without = initial_ptp_size(in);
  in.divergent_warp_ratio = 0.5;
  const auto with = initial_ptp_size(in);
  // Divergent kernels offload slower, so more blocks may hold tokens.
  EXPECT_GT(with, without);
}

TEST(Eq1Test, ZeroIntensityAllowsEverything) {
  Eq1Inputs in;
  in.pim_intensity = 0.0;
  in.max_blocks = 96;
  EXPECT_EQ(initial_ptp_size(in), 96u);
}

TEST(Eq1Test, ClampsToMaxBlocks) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 10.0;
  in.pim_intensity = 0.01;  // very low intensity -> huge pool wanted
  in.max_blocks = 128;
  EXPECT_EQ(initial_ptp_size(in), 128u);
}

TEST(Eq1Test, AtLeastOneBlock) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 1000.0;
  in.pim_intensity = 1.0;
  in.max_blocks = 128;
  in.target_rate_op_per_ns = 0.001;
  in.margin_blocks = 0;
  EXPECT_GE(initial_ptp_size(in), 1u);
}

TEST(Eq1Test, TrialRunEstimateOverride) {
  Eq1Inputs in;
  in.max_blocks = 128;
  in.target_rate_op_per_ns = 1.3;
  in.margin_blocks = 4;
  in.estimated_naive_rate_op_per_ns = 3.2;
  // ceil(1.3/3.2 * 128) + 4 = 52 + 4.
  EXPECT_EQ(initial_ptp_size(in), 56u);
  // A slow workload (estimate below the target) gets the full pool.
  in.estimated_naive_rate_op_per_ns = 0.5;
  EXPECT_EQ(initial_ptp_size(in), 128u);
}

TEST(Eq1Test, InvalidInputsThrow) {
  Eq1Inputs in;
  in.max_blocks = 0;
  EXPECT_THROW(initial_ptp_size(in), ConfigError);
  in.max_blocks = 10;
  in.target_rate_op_per_ns = 0.0;
  EXPECT_THROW(initial_ptp_size(in), ConfigError);
}

// Property: the initial pool never estimates above the target rate by more
// than the margin's worth of blocks.
class Eq1Consistency : public ::testing::TestWithParam<double> {};

TEST_P(Eq1Consistency, PoolMeetsTarget) {
  Eq1Inputs in;
  in.pim_peak_rate_op_per_ns = 10.0;
  in.pim_intensity = GetParam();
  in.max_blocks = 128;
  in.margin_blocks = 0;
  const auto pool = initial_ptp_size(in);
  if (pool < in.max_blocks) {
    // The solved pool size estimates close to (just above) the target.
    const double rate = estimate_pim_rate(in, pool);
    EXPECT_GE(rate, in.target_rate_op_per_ns - 1e-9);
    EXPECT_LE(estimate_pim_rate(in, pool - 1), rate);
  }
}

INSTANTIATE_TEST_SUITE_P(Intensities, Eq1Consistency,
                         ::testing::Values(0.05, 0.1, 0.26, 0.5, 1.0));

}  // namespace
}  // namespace coolpim::core
