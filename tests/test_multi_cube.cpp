// Tests for the multi-cube extension.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sys/multi_cube.hpp"

namespace coolpim::sys {
namespace {

class MultiCubeFixture : public ::testing::Test {
 protected:
  static const WorkloadSet& workloads() {
    static const WorkloadSet set{16, 1};
    return set;
  }

  static MultiCubeResult run(std::size_t cubes, double skew, Scenario scenario) {
    MultiCubeConfig cfg;
    cfg.cubes = cubes;
    cfg.atomic_skew = skew;
    cfg.base.scenario = scenario;
    MultiCubeSystem system{cfg};
    return system.run(workloads().profile("dc"));
  }
};

TEST_F(MultiCubeFixture, MoreCubesMoreBandwidth) {
  // Balanced striping: doubling cubes roughly halves the memory-bound time.
  const auto one = run(1, 1.0, Scenario::kIdealThermal);
  const auto two = run(2, 0.5, Scenario::kIdealThermal);
  const auto four = run(4, 0.25, Scenario::kIdealThermal);
  EXPECT_LT(two.aggregate.exec_time, one.aggregate.exec_time);
  // Beyond two cubes the GPU side (issue/latency) may already bound the run.
  EXPECT_LE(four.aggregate.exec_time, two.aggregate.exec_time);
}

TEST_F(MultiCubeFixture, SkewConcentratesPimOnCubeZero) {
  const auto r = run(4, 0.7, Scenario::kNaiveOffloading);
  ASSERT_EQ(r.pim_share.size(), 4u);
  EXPECT_NEAR(r.pim_share[0], 0.7, 0.02);
  EXPECT_NEAR(r.pim_share[1], 0.1, 0.02);
  // The hub cube runs hotter than the others.
  EXPECT_GT(r.peak_dram_temps[0].value(), r.peak_dram_temps[1].value());
}

TEST_F(MultiCubeFixture, SkewedNaiveHotterThanBalanced) {
  const auto balanced = run(4, 0.25, Scenario::kNaiveOffloading);
  const auto skewed = run(4, 0.85, Scenario::kNaiveOffloading);
  EXPECT_GT(skewed.aggregate.peak_dram_temp.value(),
            balanced.aggregate.peak_dram_temp.value());
}

TEST_F(MultiCubeFixture, CoolPimCoolsTheHottestCube) {
  // Both scenarios start from the naive-sustained warm state (so the peaks
  // coincide); the throttled run must END cooler on the hub cube.
  const auto naive = run(2, 0.8, Scenario::kNaiveOffloading);
  const auto coolpim = run(2, 0.8, Scenario::kCoolPimHw);
  ASSERT_EQ(coolpim.final_dram_temps.size(), 2u);
  EXPECT_LT(coolpim.final_dram_temps[0].value(), naive.final_dram_temps[0].value());
  EXPECT_LT(coolpim.aggregate.avg_pim_rate_op_per_ns(),
            naive.aggregate.avg_pim_rate_op_per_ns());
}

TEST_F(MultiCubeFixture, SingleCubeDegeneratesToBalanced) {
  const auto r = run(1, 1.0, Scenario::kNaiveOffloading);
  ASSERT_EQ(r.pim_share.size(), 1u);
  EXPECT_NEAR(r.pim_share[0], 1.0, 1e-9);
}

TEST(MultiCubeConfigTest, Validation) {
  MultiCubeConfig cfg;
  cfg.cubes = 0;
  EXPECT_THROW(MultiCubeSystem{cfg}, ConfigError);
  cfg.cubes = 2;
  cfg.atomic_skew = 1.5;
  EXPECT_THROW(MultiCubeSystem{cfg}, ConfigError);
}

}  // namespace
}  // namespace coolpim::sys
