// Tests for the event-detailed GPU micro-model and its cross-validation of
// the epoch model's latency-hiding assumptions.
#include <gtest/gtest.h>

#include "gpu/detailed.hpp"

namespace coolpim::gpu {
namespace {

DetailedResult run_warps(std::size_t warps, std::uint64_t ops, std::uint64_t compute,
                         AddressPattern pattern = AddressPattern::kRandom) {
  sim::Simulation sim;
  hmc::Device device{sim, hmc::hmc20_config()};
  GpuConfig cfg;
  DetailedGpu gpu{sim, cfg, device};
  WarpTrace trace;
  trace.memory_ops = ops;
  trace.compute_per_memop = compute;
  trace.pattern = pattern;
  gpu.launch(std::vector<WarpTrace>(warps, trace));
  sim.run_to_completion();
  return gpu.result();
}

TEST(DetailedGpuTest, CompletesAllOps) {
  const auto r = run_warps(4, 200, 4);
  EXPECT_EQ(r.memory_ops, 800u);
  EXPECT_GT(r.completion, Time::zero());
  EXPECT_GT(r.achieved_gbps, 0.0);
}

TEST(DetailedGpuTest, OccupancyHidesLatency) {
  // More resident warps -> more memory-level parallelism -> higher achieved
  // bandwidth, until the memory system saturates.
  const auto w1 = run_warps(1, 400, 2);
  const auto w16 = run_warps(16, 400, 2);
  const auto w128 = run_warps(128, 400, 2);
  EXPECT_GT(w16.achieved_gbps, 2.0 * w1.achieved_gbps);
  EXPECT_GT(w128.achieved_gbps, w16.achieved_gbps);
}

TEST(DetailedGpuTest, SingleWarpBandwidthBoundedByLatency) {
  // One warp with MLP 1: throughput = 64 B / round-trip latency, the same
  // relation the epoch model's latency cap uses.
  const auto r = run_warps(1, 500, 0);
  const double predicted_gbps = 64.0 / (r.avg_latency_ns * 1e-9) * 1e-9;
  EXPECT_NEAR(r.achieved_gbps, predicted_gbps, 0.25 * predicted_gbps);
}

TEST(DetailedGpuTest, ComputeBoundWhenBurstsAreLong) {
  // With long compute bursts the run is issue-bound, so doubling the burst
  // roughly doubles runtime.
  const auto short_burst = run_warps(32, 200, 200);
  const auto long_burst = run_warps(32, 200, 400);
  const double ratio = long_burst.completion / short_burst.completion;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(DetailedGpuTest, StreamingHitsInL1) {
  // A streaming warp re-touches its own lines only via the miss fill, so the
  // comparison here is PIM (bypass) vs regular (cacheable) with a small
  // footprint: the cacheable run hits, the PIM run cannot.
  sim::Simulation sim;
  hmc::Device device{sim, hmc::hmc20_config()};
  GpuConfig cfg;
  DetailedGpu gpu{sim, cfg, device};
  WarpTrace cached;
  cached.memory_ops = 2000;
  cached.pattern = AddressPattern::kRandom;
  cached.footprint_bytes = 8 * 1024;  // fits in the 16 KB L1
  gpu.launch({cached});
  sim.run_to_completion();
  EXPECT_GT(gpu.result().l1_hits, 1000u);
}

TEST(DetailedGpuTest, PimOpsBypassTheL1) {
  sim::Simulation sim;
  hmc::Device device{sim, hmc::hmc20_config()};
  GpuConfig cfg;
  DetailedGpu gpu{sim, cfg, device};
  WarpTrace pim;
  pim.memory_ops = 500;
  pim.type = hmc::TransactionType::kPimNoReturn;
  pim.footprint_bytes = 8 * 1024;  // would fit -- but PIM is uncacheable
  gpu.launch({pim});
  sim.run_to_completion();
  EXPECT_EQ(gpu.result().l1_hits, 0u);
  EXPECT_EQ(device.stats().counter_value("requests"), 500u);
}

TEST(DetailedGpuTest, CrossValidatesEpochLatencyConstant) {
  // The epoch model's latency-bound cap uses a single effective *loaded*
  // round-trip latency (GpuConfig::mem_latency).  That constant must sit
  // between the unloaded round trip (few warps, empty queues) and the
  // saturated round trip (hundreds of warps queueing at the HMC).
  const auto unloaded = run_warps(2, 500, 0);
  const auto saturated = run_warps(512, 300, 0);
  const GpuConfig cfg;
  EXPECT_LT(unloaded.avg_latency_ns, cfg.mem_latency.as_ns());
  // The full system queues deeper than this micro-trace (regular traffic
  // shares the links), so the constant may sit somewhat above the measured
  // 512-warp point -- but within 2x of it.
  EXPECT_GT(2.0 * saturated.avg_latency_ns, cfg.mem_latency.as_ns());
}

TEST(DetailedGpuTest, EmptyLaunchThrows) {
  sim::Simulation sim;
  hmc::Device device{sim, hmc::hmc20_config()};
  DetailedGpu gpu{sim, GpuConfig{}, device};
  EXPECT_THROW(gpu.launch({}), ConfigError);
}

}  // namespace
}  // namespace coolpim::gpu
