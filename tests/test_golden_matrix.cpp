// Golden regression test for the full scenario matrix: every workload under
// every scenario at scale 16, compared field-by-field against a checked-in
// CSV.  Any drift beyond 1e-9 (relative) in speedups, bandwidth consumption,
// or temperatures fails the test -- catching accidental model changes that
// the unit tests' coarse bounds would let through.
//
// To regenerate after an *intentional* model change:
//   COOLPIM_GOLDEN_REGEN=1 ./build/tests/test_golden_matrix
// then review the diff of tests/golden/matrix_scale16.csv and commit it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment.hpp"

namespace coolpim {
namespace {

constexpr unsigned kScale = 16;
constexpr unsigned kSeed = 1;  // matches bench::workloads()
constexpr double kRelTol = 1e-9;

const char* golden_path() { return COOLPIM_GOLDEN_DIR "/matrix_scale16.csv"; }

struct GoldenRow {
  std::string workload;
  std::string scenario;
  std::int64_t exec_time_ps{0};
  double speedup{0.0};
  double norm_consumption{0.0};
  double peak_dram_temp_c{0.0};
  std::int64_t thermal_warnings{0};
};

std::vector<GoldenRow> compute_matrix() {
  const sys::WorkloadSet set{kScale, kSeed};
  const std::vector<sys::Scenario> scenarios{std::begin(sys::kAllScenarios),
                                             std::end(sys::kAllScenarios)};
  const auto matrix = runner::run_matrix(set, sys::workload_names(), scenarios);

  std::vector<GoldenRow> rows;
  for (const auto& wl : matrix) {
    const auto& baseline = wl.runs.at(sys::Scenario::kNonOffloading);
    for (const auto s : scenarios) {
      const auto& r = wl.runs.at(s);
      GoldenRow row;
      row.workload = wl.workload;
      row.scenario = to_string(s);
      row.exec_time_ps = r.exec_time.as_ps();
      row.speedup = baseline.exec_time / r.exec_time;
      row.norm_consumption = r.consumption_bytes() / baseline.consumption_bytes();
      row.peak_dram_temp_c = r.peak_dram_temp.value();
      row.thermal_warnings = static_cast<std::int64_t>(r.thermal_warnings);
      rows.push_back(row);
    }
  }
  return rows;
}

void write_csv(const std::vector<GoldenRow>& rows, std::ostream& out) {
  out << "workload,scenario,exec_time_ps,speedup,norm_consumption,"
         "peak_dram_temp_c,thermal_warnings\n";
  out << std::setprecision(17);
  for (const auto& r : rows) {
    out << r.workload << ',' << r.scenario << ',' << r.exec_time_ps << ','
        << r.speedup << ',' << r.norm_consumption << ',' << r.peak_dram_temp_c
        << ',' << r.thermal_warnings << '\n';
  }
}

std::vector<GoldenRow> read_csv(std::istream& in) {
  std::vector<GoldenRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    GoldenRow r;
    std::string field;
    std::getline(ls, r.workload, ',');
    std::getline(ls, r.scenario, ',');
    std::getline(ls, field, ',');
    r.exec_time_ps = std::stoll(field);
    std::getline(ls, field, ',');
    r.speedup = std::stod(field);
    std::getline(ls, field, ',');
    r.norm_consumption = std::stod(field);
    std::getline(ls, field, ',');
    r.peak_dram_temp_c = std::stod(field);
    std::getline(ls, field, ',');
    r.thermal_warnings = std::stoll(field);
    rows.push_back(r);
  }
  return rows;
}

void expect_close(double expected, double actual, const char* what) {
  const double tol = kRelTol * std::max({1.0, std::fabs(expected), std::fabs(actual)});
  EXPECT_NEAR(actual, expected, tol) << what << " drifted beyond 1e-9 relative";
}

TEST(GoldenMatrix, Scale16MatchesCheckedInResults) {
  const auto rows = compute_matrix();

  if (std::getenv("COOLPIM_GOLDEN_REGEN")) {
    std::ofstream out{golden_path()};
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    write_csv(rows, out);
    GTEST_SKIP() << "regenerated " << golden_path() << " -- review and commit the diff";
  }

  std::ifstream in{golden_path()};
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << "; run with COOLPIM_GOLDEN_REGEN=1 to create it";
  const auto golden = read_csv(in);
  ASSERT_EQ(rows.size(), golden.size()) << "matrix shape changed";

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& g = golden[i];
    const auto& r = rows[i];
    SCOPED_TRACE(g.workload + " / " + g.scenario);
    EXPECT_EQ(r.workload, g.workload);
    EXPECT_EQ(r.scenario, g.scenario);
    EXPECT_EQ(r.exec_time_ps, g.exec_time_ps);
    expect_close(g.speedup, r.speedup, "speedup");
    expect_close(g.norm_consumption, r.norm_consumption, "bandwidth consumption");
    expect_close(g.peak_dram_temp_c, r.peak_dram_temp_c, "peak DRAM temperature");
    EXPECT_EQ(r.thermal_warnings, g.thermal_warnings);
  }
}

}  // namespace
}  // namespace coolpim
