// Tests for the die floorplan and power-map builders.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "thermal/floorplan.hpp"

namespace coolpim::thermal {
namespace {

TEST(FloorplanTest, DefaultsMatchHmc) {
  const Floorplan fp;
  EXPECT_EQ(fp.vault_count(), 32u);
  EXPECT_NEAR(fp.die_area_m2() * 1e6, 68.16, 0.5);  // ~68 mm^2 (paper V-A)
  EXPECT_EQ(fp.grid.cells(), 32u * 16u);
  EXPECT_NO_THROW(fp.validate());
}

TEST(FloorplanTest, VaultCentersInsideGrid) {
  const Floorplan fp;
  for (std::size_t vy = 0; vy < fp.vaults_y; ++vy) {
    for (std::size_t vx = 0; vx < fp.vaults_x; ++vx) {
      EXPECT_LT(fp.vault_center_cell(vx, vy), fp.grid.cells());
    }
  }
  // Distinct vaults map to distinct cells at this resolution.
  EXPECT_NE(fp.vault_center_cell(0, 0), fp.vault_center_cell(1, 0));
}

TEST(FloorplanTest, InvalidConfigsThrow) {
  Floorplan fp;
  fp.grid.nx = 4;  // cannot resolve 8 vaults in x
  EXPECT_THROW(fp.validate(), ConfigError);
}

TEST(PowerMapTest, UniformConservesTotal) {
  const Floorplan fp;
  const PowerMap map = uniform_power(fp, 12.5);
  EXPECT_NEAR(map.total(), 12.5, 1e-9);
  // Every cell identical.
  for (std::size_t c = 1; c < fp.grid.cells(); ++c) {
    EXPECT_DOUBLE_EQ(map.at(c), map.at(0));
  }
}

TEST(PowerMapTest, VaultCenteredConservesTotalAndConcentrates) {
  const Floorplan fp;
  const PowerMap map = vault_centered_power(fp, 26.0, 1);
  EXPECT_NEAR(map.total(), 26.0, 1e-9);
  // Exactly vault_count cells carry power with spread 1.
  std::size_t hot = 0;
  for (std::size_t c = 0; c < fp.grid.cells(); ++c) {
    if (map.at(c) > 0.0) ++hot;
  }
  EXPECT_EQ(hot, fp.vault_count());
}

TEST(PowerMapTest, SpreadRadiusGrowsFootprint) {
  const Floorplan fp;
  auto hot_cells = [&](int spread) {
    const PowerMap map = vault_centered_power(fp, 10.0, spread);
    std::size_t hot = 0;
    for (std::size_t c = 0; c < fp.grid.cells(); ++c) {
      if (map.at(c) > 0.0) ++hot;
    }
    return hot;
  };
  EXPECT_GT(hot_cells(2), hot_cells(1));
  EXPECT_THROW(vault_centered_power(fp, 1.0, 0), ConfigError);
}

TEST(PowerMapTest, EdgePowerOnPerimeterOnly) {
  const Floorplan fp;
  const PowerMap map = edge_power(fp, 8.0);
  EXPECT_NEAR(map.total(), 8.0, 1e-9);
  // Interior cells carry nothing.
  const std::size_t interior = fp.grid.index(fp.grid.nx / 2, fp.grid.ny / 2);
  EXPECT_DOUBLE_EQ(map.at(interior), 0.0);
  EXPECT_GT(map.at(fp.grid.index(0, 0)), 0.0);
}

TEST(PowerMapTest, AddAndScale) {
  const Floorplan fp;
  PowerMap map = uniform_power(fp, 10.0);
  map.add(uniform_power(fp, 5.0));
  EXPECT_NEAR(map.total(), 15.0, 1e-9);
  map.scale(2.0);
  EXPECT_NEAR(map.total(), 30.0, 1e-9);
  map.clear();
  EXPECT_DOUBLE_EQ(map.total(), 0.0);
}

}  // namespace
}  // namespace coolpim::thermal
