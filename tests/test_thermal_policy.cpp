// Tests for the DRAM thermal operating policy (paper Table IV phases).
#include <gtest/gtest.h>

#include "hmc/thermal_policy.hpp"

namespace coolpim::hmc {
namespace {

TEST(ThermalPolicyTest, PhaseBoundaries) {
  const ThermalPolicy p;
  EXPECT_EQ(p.phase(Celsius{25.0}), ThermalPhase::kNormal);
  EXPECT_EQ(p.phase(Celsius{85.0}), ThermalPhase::kNormal);   // inclusive bound
  EXPECT_EQ(p.phase(Celsius{85.1}), ThermalPhase::kExtended);
  EXPECT_EQ(p.phase(Celsius{95.0}), ThermalPhase::kExtended);
  EXPECT_EQ(p.phase(Celsius{95.1}), ThermalPhase::kCritical);
  EXPECT_EQ(p.phase(Celsius{105.0}), ThermalPhase::kCritical);
  EXPECT_EQ(p.phase(Celsius{105.1}), ThermalPhase::kShutdown);
}

TEST(ThermalPolicyTest, WarningBelowNormalLimit) {
  const ThermalPolicy p;
  EXPECT_LT(p.warning_threshold, p.normal_limit);
  EXPECT_FALSE(p.warning(Celsius{80.0}));
  EXPECT_TRUE(p.warning(Celsius{84.9}));
}

TEST(ThermalPolicyTest, ServiceScalesDecreaseWithPhase) {
  const ThermalPolicy p;
  EXPECT_DOUBLE_EQ(p.service_scale(ThermalPhase::kNormal), 1.0);
  EXPECT_LT(p.service_scale(ThermalPhase::kExtended), 1.0);
  EXPECT_LT(p.service_scale(ThermalPhase::kCritical),
            p.service_scale(ThermalPhase::kExtended));
  EXPECT_DOUBLE_EQ(p.service_scale(ThermalPhase::kShutdown), 0.0);
}

TEST(ThermalPolicyTest, ConservativeShutdownForPrototype) {
  // The HMC 1.1 prototype stops completely near 95 C die temperature
  // (paper Section III-A.2) instead of derating.
  ThermalPolicy p;
  p.conservative_shutdown = true;
  EXPECT_EQ(p.phase(Celsius{94.0}), ThermalPhase::kExtended);
  EXPECT_EQ(p.phase(Celsius{96.0}), ThermalPhase::kShutdown);
}

TEST(ThermalPolicyTest, PhaseNames) {
  EXPECT_EQ(to_string(ThermalPhase::kNormal), "normal (0-85C)");
  EXPECT_EQ(to_string(ThermalPhase::kShutdown), "shutdown");
}

// Property: phase is monotone non-decreasing in temperature.
class PhaseMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PhaseMonotone, MonotoneAcrossStep) {
  const ThermalPolicy p;
  const double t = GetParam();
  EXPECT_LE(static_cast<int>(p.phase(Celsius{t})), static_cast<int>(p.phase(Celsius{t + 5.0})));
}

INSTANTIATE_TEST_SUITE_P(Temps, PhaseMonotone,
                         ::testing::Values(20.0, 80.0, 84.9, 85.1, 94.9, 99.0, 104.9));

}  // namespace
}  // namespace coolpim::hmc
