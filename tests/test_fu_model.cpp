// Tests for the functional PIM FU model: HMC 2.0 atomic semantics, including
// equivalence with the CUDA-atomic path the shadow kernels take.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "hmc/fu_model.hpp"

namespace coolpim::hmc {
namespace {

Operand128 op128(std::uint64_t lo, std::uint64_t hi = 0) { return {lo, hi}; }

TEST(FuModelTest, SignedAdd8) {
  const auto r = fu_execute(PimOpcode::kSignedAdd8, op128(40), op128(2));
  EXPECT_EQ(r.new_value.lo, 42u);
  EXPECT_EQ(r.old_value.lo, 40u);
  EXPECT_TRUE(r.atomic_success);
  // Negative immediates via two's complement.
  EXPECT_EQ(fu_add64(10, -3), 7);
  EXPECT_EQ(fu_add64(-10, -3), -13);
}

TEST(FuModelTest, SignedAdd8Wraps) {
  const auto r = fu_execute(PimOpcode::kSignedAdd8, op128(~0ull), op128(1));
  EXPECT_EQ(r.new_value.lo, 0u);
}

TEST(FuModelTest, DualAdd16) {
  const auto r = fu_execute(PimOpcode::kSignedAdd16, op128(1, 2), op128(10, 20));
  EXPECT_EQ(r.new_value.lo, 11u);
  EXPECT_EQ(r.new_value.hi, 22u);
}

TEST(FuModelTest, SwapReplacesAndReturnsOld) {
  const auto r = fu_execute(PimOpcode::kSwap, op128(0xAA, 0xBB), op128(0x11, 0x22));
  EXPECT_EQ(r.new_value, op128(0x11, 0x22));
  EXPECT_EQ(r.old_value, op128(0xAA, 0xBB));
}

TEST(FuModelTest, BitWriteMasks) {
  // data = 0b1010, mask = 0b1100: write the top two bits only.
  const auto r = fu_execute(PimOpcode::kBitWrite, op128(0b0101), op128(0b1010, 0b1100));
  EXPECT_EQ(r.new_value.lo, 0b1001u);
}

TEST(FuModelTest, BooleanOps) {
  EXPECT_EQ(fu_execute(PimOpcode::kAnd, op128(0b1100, 0xF0), op128(0b1010, 0x0F)).new_value,
            op128(0b1000, 0x00));
  EXPECT_EQ(fu_execute(PimOpcode::kOr, op128(0b1100, 0xF0), op128(0b1010, 0x0F)).new_value,
            op128(0b1110, 0xFF));
}

TEST(FuModelTest, CasEqual) {
  // Compare memory.lo against imm.hi; swap in imm.lo on a match.
  const auto hit = fu_execute(PimOpcode::kCasEqual, op128(7), op128(99, 7));
  EXPECT_TRUE(hit.atomic_success);
  EXPECT_EQ(hit.new_value.lo, 99u);
  const auto miss = fu_execute(PimOpcode::kCasEqual, op128(8), op128(99, 7));
  EXPECT_FALSE(miss.atomic_success);
  EXPECT_EQ(miss.new_value.lo, 8u);  // unchanged
}

TEST(FuModelTest, CasGreaterActsAsAtomicMax) {
  const auto up = fu_execute(PimOpcode::kCasGreater, op128(5), op128(9));
  EXPECT_TRUE(up.atomic_success);
  EXPECT_EQ(up.new_value.lo, 9u);
  const auto keep = fu_execute(PimOpcode::kCasGreater, op128(9), op128(5));
  EXPECT_FALSE(keep.atomic_success);
  EXPECT_EQ(keep.new_value.lo, 9u);
  // Signed comparison.
  const auto neg = fu_execute(PimOpcode::kCasGreater,
                              op128(static_cast<std::uint64_t>(-5)), op128(1));
  EXPECT_TRUE(neg.atomic_success);
}

TEST(FuModelTest, FpAddAndMin) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const auto val = [](std::uint64_t b) { return std::bit_cast<double>(b); };
  const auto add = fu_execute(PimOpcode::kFpAdd, op128(bits(1.5)), op128(bits(2.25)));
  EXPECT_DOUBLE_EQ(val(add.new_value.lo), 3.75);
  const auto mn = fu_execute(PimOpcode::kFpMin, op128(bits(4.0)), op128(bits(2.0)));
  EXPECT_DOUBLE_EQ(val(mn.new_value.lo), 2.0);
}

// Property: an FP-min reduction through the FU matches the host-side fold
// (the shadow kernel's atomicMin path), element order notwithstanding.
class FuReductionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuReductionEquivalence, FpMinMatchesHostFold) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const auto val = [](std::uint64_t b) { return std::bit_cast<double>(b); };
  const double inputs[] = {5.0, -2.5, 7.75, 0.0, -2.5, 11.0};
  // PIM path.
  Operand128 mem = op128(bits(1e300));
  for (const double x : inputs) {
    mem = fu_execute(PimOpcode::kFpMin, mem, op128(bits(x))).new_value;
  }
  // Host path.
  double host = 1e300;
  for (const double x : inputs) host = std::min(host, x);
  EXPECT_DOUBLE_EQ(val(mem.lo), host);
  (void)GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuReductionEquivalence, ::testing::Values(1u, 2u));

// Property: add is commutative and associative over any op sequence
// (integer wrap-around semantics), so racy PIM update order cannot change
// the final sum -- the reason GraphBIG's atomics tolerate races.
TEST(FuModelTest, AddOrderIndependence) {
  const std::int64_t deltas[] = {5, -3, 100, -42, 7};
  std::int64_t forward = 0, backward = 0;
  for (const auto d : deltas) forward = fu_add64(forward, d);
  for (int i = 4; i >= 0; --i) backward = fu_add64(backward, deltas[i]);
  EXPECT_EQ(forward, backward);
}

}  // namespace
}  // namespace coolpim::hmc
