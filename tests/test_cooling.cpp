// Tests for the cooling solutions and fan-power model (paper Table II).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "power/cooling.hpp"

namespace coolpim::power {
namespace {

TEST(CoolingTest, TableTwoResistances) {
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kPassive).resistance.value(), 4.0);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kLowEndActive).resistance.value(), 2.0);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kCommodityServer).resistance.value(), 0.5);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kHighEndActive).resistance.value(), 0.2);
}

TEST(CoolingTest, TableTwoFanPowerRatios) {
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kPassive).fan_power_rel, 0.0);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kLowEndActive).fan_power_rel, 1.0);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kCommodityServer).fan_power_rel, 104.0);
  EXPECT_DOUBLE_EQ(cooling(CoolingType::kHighEndActive).fan_power_rel, 380.0);
}

TEST(CoolingTest, HighEndFanIsAbout13Watts) {
  // Paper Section III-B: the high-end 0.2 C/W plate-fin sink's fan consumes
  // ~13 W, about half the power of a fully-utilized HMC 2.0 cube.
  EXPECT_NEAR(cooling(CoolingType::kHighEndActive).fan_power_watts, 13.0, 0.1);
}

TEST(CoolingTest, ActiveFlag) {
  EXPECT_FALSE(cooling(CoolingType::kPassive).is_active());
  EXPECT_TRUE(cooling(CoolingType::kLowEndActive).is_active());
}

TEST(CoolingTest, AllSolutionsOrdered) {
  const auto& all = all_cooling_solutions();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i].resistance, all[i - 1].resistance);
    EXPECT_GE(all[i].fan_power_watts, all[i - 1].fan_power_watts);
  }
}

TEST(CoolingTest, FanPowerInterpolationHitsAnchors) {
  EXPECT_NEAR(fan_power_for_resistance(ThermalResistance{2.0}),
              cooling(CoolingType::kLowEndActive).fan_power_watts, 1e-9);
  EXPECT_NEAR(fan_power_for_resistance(ThermalResistance{0.5}),
              cooling(CoolingType::kCommodityServer).fan_power_watts, 1e-9);
  EXPECT_NEAR(fan_power_for_resistance(ThermalResistance{0.2}),
              cooling(CoolingType::kHighEndActive).fan_power_watts, 1e-9);
}

TEST(CoolingTest, FanPowerMonotoneInResistance) {
  double prev = 1e18;
  for (double r = 0.15; r <= 2.0; r += 0.05) {
    const double w = fan_power_for_resistance(ThermalResistance{r});
    EXPECT_LE(w, prev + 1e-12) << "at R=" << r;
    prev = w;
  }
}

TEST(CoolingTest, PassiveRangeCostsNothing) {
  EXPECT_DOUBLE_EQ(fan_power_for_resistance(ThermalResistance{4.0}), 0.0);
  EXPECT_DOUBLE_EQ(fan_power_for_resistance(ThermalResistance{10.0}), 0.0);
  EXPECT_THROW(fan_power_for_resistance(ThermalResistance{0.0}), ConfigError);
}

TEST(CoolingTest, RequiredResistanceForFullLoadedPim) {
  // Paper Section III-B: suppressing a full-loaded PIM below 85 C requires
  // R <= 0.27 C/W.  With ~58 W full-load power and 69 C ambient headroom
  // pure lumped-R screening should land near that value given ~twice the
  // average rise at the hotspot.
  const auto r = required_resistance(Watts{58.0}, Celsius{25.0}, Celsius{85.0});
  EXPECT_NEAR(r.value(), 1.03, 0.05);  // average-rise bound (hotspot refines)
  EXPECT_THROW(required_resistance(Watts{0.0}, Celsius{25.0}, Celsius{85.0}), ConfigError);
  EXPECT_THROW(required_resistance(Watts{10.0}, Celsius{85.0}, Celsius{85.0}), ConfigError);
}

TEST(CoolingTest, PrototypeModuleSolutions) {
  EXPECT_NEAR(prototype_cooling(CoolingType::kPassive).resistance.value(), 1.45, 1e-9);
  EXPECT_NEAR(prototype_cooling(CoolingType::kLowEndActive).resistance.value(), 0.70, 1e-9);
  EXPECT_NEAR(prototype_cooling(CoolingType::kHighEndActive).resistance.value(), 0.49, 1e-9);
  EXPECT_THROW(prototype_cooling(CoolingType::kCommodityServer), ConfigError);
}

}  // namespace
}  // namespace coolpim::power
