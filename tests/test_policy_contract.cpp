// Conformance suite for the controller zoo (DESIGN.md section 11).
//
// Parameterized over control::kRegisteredPolicies, so registering a new
// policy in control/registry.hpp enrolls it here automatically.  The pinned
// invariants are the Policy contract:
//   * throttle_level() stays in [0, max_throttle_level()] at all times;
//   * consecutive fresh warnings never decrease the level;
//   * a stale delayed duplicate (same raise time) never applies a second
//     reduction step;
//   * on_watchdog_engage() removes at least half the remaining allowance,
//     or reaches the policy's saturation level, whichever binds first;
//   * runner results are bit-identical at jobs=1 and jobs=8.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "control/registry.hpp"
#include "runner/experiment.hpp"
#include "sys/system.hpp"

namespace coolpim::control {
namespace {

PolicyBuild make_build(sys::Scenario scenario) {
  PolicyBuild b;
  b.scenario = scenario;
  // A clean 64-token pool for SW-DynT: skip Eq. 1 static initialization so
  // the level axis is simply tokens removed from 64.
  b.sw.use_static_init = false;
  b.sw.eq1.max_blocks = 64;
  return b;
}

/// SW-DynT's pool shrink clamps to the issued-token count, so a policy must
/// be under load for throttling to bite; for the other policies block
/// acquisition is a no-op that always succeeds, hence the iteration cap.
void saturate_acquires(Policy& p, Time now) {
  for (std::uint32_t i = 0; i < 2048 && p.acquire_block(now); ++i) {
  }
}

/// Make any deferred reduction visible: advance past the policy's throttle
/// delay and poke the launch path (SW-DynT applies pending shrinks there).
Time settle(Policy& p, Time now) {
  const Time later = now + p.throttle_delay() + Time::us(1.0);
  if (p.acquire_block(later)) p.release_block(later);
  return later;
}

class PolicyContract : public ::testing::TestWithParam<PolicyInfo> {
 protected:
  std::unique_ptr<Policy> make() { return make_policy(make_build(GetParam().scenario)); }
};

TEST_P(PolicyContract, StartsUnthrottledAndInRange) {
  auto p = make();
  EXPECT_EQ(p->throttle_level(), 0u);
  EXPECT_GT(p->max_throttle_level(), 0u);
  EXPECT_LE(p->saturation_level(), p->max_throttle_level());
  EXPECT_GT(p->saturation_level(), 0u);
}

TEST_P(PolicyContract, FreshWarningsDegradeMonotonically) {
  auto p = make();
  Time t = Time::ms(1.0);
  saturate_acquires(*p, t);
  std::uint32_t prev = p->throttle_level();
  bool stepped = false;
  for (int i = 0; i < 6; ++i) {
    // 3 ms spacing clears every policy's coalescing window (2.5 ms).
    t += Time::ms(3.0);
    p->on_thermal_warning(t);
    t = settle(*p, t);
    const std::uint32_t level = p->throttle_level();
    EXPECT_LE(level, p->max_throttle_level());
    EXPECT_GE(level, prev) << "warning " << i << " decreased the level";
    if (level > prev) stepped = true;
    prev = level;
  }
  EXPECT_TRUE(stepped) << "six fresh warnings never throttled at all";
}

TEST_P(PolicyContract, StaleDuplicateNeverDoubleThrottles) {
  auto p = make();
  Time t = Time::ms(1.0);
  saturate_acquires(*p, t);
  const Time raised = t + Time::ms(3.0);
  p->on_thermal_warning(raised, raised);
  const Time settled = settle(*p, raised);
  const std::uint32_t after_first = p->throttle_level();
  EXPECT_GT(after_first, 0u);
  // The same excursion's warning redelivered late (retry / delay): the raise
  // time is inside the coalescing window, so no second step may apply.
  p->on_thermal_warning(settled + Time::ms(1.0), raised);
  settle(*p, settled + Time::ms(1.0));
  EXPECT_EQ(p->throttle_level(), after_first);
}

TEST_P(PolicyContract, WatchdogRemovesHalfTheRemainingAllowance) {
  auto p = make();
  Time t = Time::ms(1.0);
  saturate_acquires(*p, t);
  const std::uint32_t max = p->max_throttle_level();
  // Repeated engagements must converge: each one either halves what is left
  // or runs into the policy's saturation floor.
  for (int i = 0; i < 12; ++i) {
    const std::uint32_t remaining_before = max - p->throttle_level();
    t += Time::ms(3.0);
    p->on_watchdog_engage(t);
    t = settle(*p, t);
    const std::uint32_t remaining_after = max - p->throttle_level();
    EXPECT_LE(p->throttle_level(), max);
    EXPECT_LE(remaining_after,
              std::max((remaining_before + 1) / 2, max - p->saturation_level()))
        << "engagement " << i << " removed less than half the remaining levels";
  }
  // Converged at (or past) the saturation level.
  EXPECT_GE(p->throttle_level(), p->saturation_level());
}

std::string policy_test_name(const ::testing::TestParamInfo<PolicyInfo>& info) {
  std::string name{info.param.cli_name};
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Zoo, PolicyContract, ::testing::ValuesIn(kRegisteredPolicies),
                         policy_test_name);

void expect_identical(const sys::RunResult& a, const sys::RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.pim_ops, b.pim_ops);
  EXPECT_EQ(a.host_atomics, b.host_atomics);
  EXPECT_EQ(a.peak_dram_temp.value(), b.peak_dram_temp.value());
  EXPECT_EQ(a.thermal_warnings, b.thermal_warnings);
  EXPECT_EQ(a.cube_energy_j, b.cube_energy_j);
}

TEST(PolicyContractSweep, EveryPolicyIsBitIdenticalAcrossJobCounts) {
  // The determinism leg of the contract: policies draw no RNG, so the full
  // policy matrix is field-for-field identical at jobs=1 and jobs=8 with the
  // cache disabled (both sweeps really execute every simulation).
  const sys::WorkloadSet set{14, 1};
  std::vector<sys::Scenario> scenarios;
  for (const PolicyInfo& info : kRegisteredPolicies) scenarios.push_back(info.scenario);
  runner::RunOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  runner::RunOptions wide;
  wide.jobs = 8;
  wide.use_cache = false;
  const auto a = runner::run_matrix(set, {"dc"}, scenarios, {}, serial);
  const auto b = runner::run_matrix(set, {"dc"}, scenarios, {}, wide);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  for (const auto s : scenarios) {
    SCOPED_TRACE(std::string{sys::to_string(s)});
    expect_identical(a[0].runs.at(s), b[0].runs.at(s));
  }
}

}  // namespace
}  // namespace coolpim::control
