// Tests for the deterministic random number generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace coolpim {
namespace {

TEST(RngTest, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextInInclusive) {
  Rng rng{13};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformityChiSquareLoose) {
  Rng rng{17};
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof; 99.9th percentile ~ 37.7.  Generous bound against flakiness.
  EXPECT_LT(chi2, 45.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng{19};
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent{23};
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BernoulliRate) {
  Rng rng{29};
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(SplitMixTest, KnownExpansion) {
  SplitMix64 sm{0};
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2{0};
  EXPECT_EQ(sm2.next(), a);
}

}  // namespace
}  // namespace coolpim
