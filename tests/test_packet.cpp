// Tests for the FLIT/packet model -- reproduces paper Table I exactly.
#include <gtest/gtest.h>

#include "hmc/packet.hpp"

namespace coolpim::hmc {
namespace {

TEST(FlitCostTest, TableOne) {
  EXPECT_EQ(flit_cost(TransactionType::kRead64).request, 1u);
  EXPECT_EQ(flit_cost(TransactionType::kRead64).response, 5u);
  EXPECT_EQ(flit_cost(TransactionType::kWrite64).request, 5u);
  EXPECT_EQ(flit_cost(TransactionType::kWrite64).response, 1u);
  EXPECT_EQ(flit_cost(TransactionType::kPimNoReturn).request, 2u);
  EXPECT_EQ(flit_cost(TransactionType::kPimNoReturn).response, 1u);
  EXPECT_EQ(flit_cost(TransactionType::kPimWithReturn).request, 2u);
  EXPECT_EQ(flit_cost(TransactionType::kPimWithReturn).response, 2u);
}

TEST(FlitCostTest, PimSavesUpToHalfTheFlits) {
  // Paper Section II-B: a 64-byte READ/WRITE pair consumes 6 FLITs while a
  // PIM op needs 3-4, so offloading can save up to 50% of link bandwidth.
  const auto read = flit_cost(TransactionType::kRead64).total();
  const auto pim = flit_cost(TransactionType::kPimNoReturn).total();
  EXPECT_EQ(read, 6u);
  EXPECT_EQ(pim, 3u);
  EXPECT_LE(pim * 2, read * 1 + 0u);
}

TEST(FlitCostTest, TotalBytes) {
  EXPECT_EQ(flit_cost(TransactionType::kRead64).total_bytes(), 6u * 16u);
  EXPECT_EQ(flit_cost(TransactionType::kPimWithReturn).total_bytes(), 4u * 16u);
}

TEST(PayloadTest, Bytes) {
  EXPECT_EQ(payload_bytes(TransactionType::kRead64), 64u);
  EXPECT_EQ(payload_bytes(TransactionType::kWrite64), 64u);
  EXPECT_EQ(payload_bytes(TransactionType::kPimNoReturn), 0u);
  EXPECT_EQ(payload_bytes(TransactionType::kPimWithReturn), 16u);
}

TEST(PacketTest, FlitSizeIs128Bits) { EXPECT_EQ(kFlitBytes, 16u); }

TEST(PacketTest, ErrStatThermalWarningValue) {
  // HMC sets ERRSTAT[6:0] = 0x01 when the operational temperature limit is
  // exceeded (paper Section II-A).
  EXPECT_EQ(static_cast<int>(ErrStat::kThermalWarning), 0x01);
  EXPECT_EQ(static_cast<int>(ErrStat::kOk), 0x00);
}

TEST(PacketTest, Names) {
  EXPECT_EQ(to_string(TransactionType::kRead64), "64-byte READ");
  EXPECT_EQ(to_string(TransactionType::kPimNoReturn), "PIM inst. without return");
}

}  // namespace
}  // namespace coolpim::hmc
