// End-to-end observability tests: the determinism contract (trace and counter
// files byte-identical at jobs=1 vs jobs=8), the non-perturbation contract
// (bit-identical RunResults with and without an observer attached), and a
// golden trace smoke test (output parses as JSON, spans nest, every
// instrumented subsystem category is present).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "runner/experiment.hpp"

namespace coolpim {
namespace {

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent scanner: accepts exactly the JSON grammar (values,
// objects, arrays, strings with escapes, numbers, literals).  Enough to
// assert "a trace viewer's parser will not reject this file" without pulling
// in a JSON dependency.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_{text} {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string_view{"\"\\/bfnrt"}.find(e) == std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_{0};
};

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// -----------------------------------------------------------------------------

class ObsIntegration : public ::testing::Test {
 protected:
  static const sys::WorkloadSet& set() {
    static const sys::WorkloadSet s{12, 1};
    return s;
  }

  static std::vector<runner::Experiment> experiments() {
    std::vector<runner::Experiment> out;
    for (const auto* w : {"dc", "pagerank"}) {
      for (const auto s : {sys::Scenario::kNaiveOffloading, sys::Scenario::kCoolPimHw,
                           sys::Scenario::kCoolPimSw}) {
        runner::Experiment e;
        e.workload = w;
        e.config.scenario = s;
        out.push_back(e);
      }
    }
    return out;
  }

  struct SweepFiles {
    std::string trace;
    std::string counters;
    std::vector<sys::RunResult> results;
  };

  static SweepFiles observed_sweep(unsigned jobs) {
    // The runner task span records cache_hit, so equal process state (an
    // empty cache) is part of the byte-identical contract.
    runner::clear_result_cache();
    obs::SweepObserver observer{/*want_trace=*/true, /*want_counters=*/true};
    runner::RunOptions opt;
    opt.jobs = jobs;
    opt.obs = &observer;
    SweepFiles out;
    out.results = runner::run_sweep(set(), experiments(), opt);
    std::ostringstream trace;
    observer.write_trace(trace);
    out.trace = trace.str();
    std::ostringstream counters;
    observer.write_counters_csv(counters);
    out.counters = counters.str();
    return out;
  }
};

TEST_F(ObsIntegration, TraceAndCountersByteIdenticalAcrossJobCounts) {
  const auto serial = observed_sweep(1);
  const auto wide = observed_sweep(8);
  EXPECT_EQ(serial.trace, wide.trace);
  EXPECT_EQ(serial.counters, wide.counters);
}

TEST_F(ObsIntegration, ObserverDoesNotPerturbResults) {
  runner::clear_result_cache();
  runner::RunOptions plain;
  plain.jobs = 2;
  plain.use_cache = false;
  const auto bare = runner::run_sweep(set(), experiments(), plain);

  obs::SweepObserver observer{true, true};
  runner::RunOptions observed = plain;
  observed.use_cache = true;  // observed tasks bypass lookup anyway
  observed.obs = &observer;
  const auto traced = runner::run_sweep(set(), experiments(), observed);

  ASSERT_EQ(bare.size(), traced.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    SCOPED_TRACE(bare[i].workload + " / " + bare[i].scenario);
    // Bit-identical, not merely close: the recording path must be read-only.
    EXPECT_EQ(bare[i].exec_time, traced[i].exec_time);
    EXPECT_EQ(bare[i].link_data_bytes, traced[i].link_data_bytes);
    EXPECT_EQ(bare[i].pim_ops, traced[i].pim_ops);
    EXPECT_EQ(bare[i].host_atomics, traced[i].host_atomics);
    EXPECT_EQ(bare[i].peak_dram_temp.value(), traced[i].peak_dram_temp.value());
    EXPECT_EQ(bare[i].thermal_warnings, traced[i].thermal_warnings);
    EXPECT_EQ(bare[i].cube_energy_j, traced[i].cube_energy_j);
    EXPECT_EQ(bare[i].shut_down, traced[i].shut_down);
  }
  runner::clear_result_cache();
}

TEST_F(ObsIntegration, GoldenTraceSmoke) {
  const auto files = observed_sweep(4);

  // 1. The file is JSON a trace viewer will accept.
  JsonScanner scanner{files.trace};
  EXPECT_TRUE(scanner.valid());
  EXPECT_EQ(files.trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);

  // 2. Spans nest: every begin has an end.
  EXPECT_EQ(count_occurrences(files.trace, "\"ph\":\"B\""),
            count_occurrences(files.trace, "\"ph\":\"E\""));
  EXPECT_GT(count_occurrences(files.trace, "\"ph\":\"B\""), 0u);

  // 3. Every instrumented subsystem shows up (the schema catalogue in
  //    docs/OBSERVABILITY.md -- this is its enforcement point).
  for (const auto* cat : {"runner", "sim", "thermal", "core", "hmc", "gpu", "sys"}) {
    SCOPED_TRACE(cat);
    EXPECT_NE(files.trace.find("\"cat\":\"" + std::string{cat} + "\""), std::string::npos);
  }

  // 4. One metadata track per task, in submission order.
  EXPECT_EQ(count_occurrences(files.trace, "\"ph\":\"M\""), experiments().size());
  EXPECT_LT(files.trace.find("dc / "), files.trace.find("pagerank / "));

  // 5. Counters CSV carries the headline counters for every task.
  EXPECT_EQ(files.counters.find("task,workload,scenario,t_ms,kind,counter,value\n"), 0u);
  for (const auto* name :
       {"counter,sys/epochs", "counter,thermal/steps", "counter,gpu/pim_ops",
        "counter,hmc/served_pim_ops", "gauge,thermal/peak_dram_c"}) {
    SCOPED_TRACE(name);
    EXPECT_NE(files.counters.find(name), std::string::npos);
  }
}

TEST_F(ObsIntegration, RunnerTaskSpanCarriesIdentity) {
  runner::clear_result_cache();
  obs::SweepObserver observer{true, false};
  runner::RunOptions opt;
  opt.jobs = 1;
  opt.obs = &observer;
  (void)runner::run_one(set(), "dc", sys::Scenario::kCoolPimHw, {}, opt);

  std::ostringstream os;
  observer.write_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"name\":\"task\""), std::string::npos);
  EXPECT_NE(trace.find("\"workload\":\"dc\""), std::string::npos);
  EXPECT_NE(trace.find("\"cache_hit\":false"), std::string::npos);
  // Key and seed render as 16-digit hex strings (JSON numbers would lose
  // precision past 2^53 in viewers).
  EXPECT_NE(trace.find("\"key\":\""), std::string::npos);
  EXPECT_NE(trace.find("\"seed\":\""), std::string::npos);
}

}  // namespace
}  // namespace coolpim
