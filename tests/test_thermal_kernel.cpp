// Thermal fast-path contract tests (docs/PERFORMANCE.md):
//  * the branch-free flat-stencil sweep (StackModel::step) is bit-identical
//    to the retained guarded reference sweep on randomized stacks,
//  * the transient kernel is stable at stable_step() under extreme cooling,
//  * warm-started steady solves land on the cold solution within the solver
//    tolerance at a fraction of the iterations,
//  * the hot path performs no heap allocations after construction -- checked
//    with this binary's counting global operator new (tests are separate
//    executables, so the override is visible to every allocation here).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hmc/config.hpp"
#include "hmc/link_model.hpp"
#include "power/cooling.hpp"
#include "power/energy_model.hpp"
#include "thermal/hmc_thermal.hpp"
#include "thermal/stack_model.hpp"

// GCC pairs the inlined replacement operator new with std::free and reports a
// false mismatch; the replacement new below really does malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_live_allocs{0};

}  // namespace

// Counting allocator: every operator-new form funnels through here.  The
// counter is read around the calls under test; gtest's own allocations
// happen outside those windows.
void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace coolpim::thermal {
namespace {

std::uint64_t allocations() { return g_live_allocs.load(std::memory_order_relaxed); }

/// Randomized but physically valid stack: 1-5 layers, odd grid shapes,
/// varying materials and sink parameters.
StackSpec random_spec(Rng& rng) {
  StackSpec spec;
  spec.floorplan.vaults_x = 1;
  spec.floorplan.vaults_y = 1;
  spec.floorplan.grid.nx = static_cast<std::size_t>(rng.next_in(1, 24));
  spec.floorplan.grid.ny = static_cast<std::size_t>(rng.next_in(1, 12));
  spec.floorplan.die_width_m = 2e-3 + 10e-3 * rng.next_double();
  spec.floorplan.die_height_m = 2e-3 + 10e-3 * rng.next_double();
  const auto n_layers = static_cast<std::size_t>(rng.next_in(1, 5));
  for (std::size_t l = 0; l < n_layers; ++l) {
    LayerSpec layer;
    layer.name = "L" + std::to_string(l);
    layer.thickness_m = 20e-6 + 80e-6 * rng.next_double();
    layer.conductivity = 30.0 + 200.0 * rng.next_double();
    layer.volumetric_heat_capacity = 1e6 + 2e6 * rng.next_double();
    layer.interface_r_above = 1e-6 + 2e-5 * rng.next_double();
    spec.layers.push_back(layer);
  }
  spec.tim_r = 2e-6 + 2e-5 * rng.next_double();
  spec.sink_r = ThermalResistance{0.1 + 2.0 * rng.next_double()};
  spec.sink_heat_capacity = 0.005 + 10.0 * rng.next_double();
  spec.board_r = 5.0 + 40.0 * rng.next_double();
  spec.co_heater_watts = rng.next_bool(0.3) ? 5.0 * rng.next_double() : 0.0;
  return spec;
}

void apply_random_power(StackModel& model, Rng& rng) {
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    PowerMap pm{model.spec().floorplan.grid};
    const double layer_watts = 8.0 * rng.next_double();
    for (std::size_t c = 0; c < model.cells_per_layer(); ++c) {
      pm.add(c, layer_watts * rng.next_double() / static_cast<double>(model.cells_per_layer()));
    }
    model.set_layer_power(l, pm);
  }
}

void expect_fields_bit_identical(const StackModel& a, const StackModel& b) {
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (std::size_t c = 0; c < a.cells_per_layer(); ++c) {
      // EXPECT_EQ on doubles: exact bit-for-bit agreement, not a tolerance.
      ASSERT_EQ(a.cell_temp(l, c).value(), b.cell_temp(l, c).value())
          << "layer " << l << " cell " << c;
    }
  }
  ASSERT_EQ(a.sink_temp().value(), b.sink_temp().value());
}

TEST(ThermalKernel, FastSweepBitIdenticalToReferenceOnRandomStacks) {
  Rng rng{0x7ea4'd00d'1234'5678ULL};
  for (int trial = 0; trial < 12; ++trial) {
    const StackSpec spec = random_spec(rng);
    StackModel fast{spec};
    StackModel ref{spec};
    Rng power_rng{rng.next_u64()};
    Rng power_rng_copy = power_rng;
    apply_random_power(fast, power_rng);
    apply_random_power(ref, power_rng_copy);

    // Mix of sub-stable and multi-substep strides, interleaved with power
    // changes mid-run as the system driver does.
    const Time strides[] = {fast.stable_step(), Time::us(10.0), Time::us(3.3), Time::us(50.0)};
    for (const Time dt : strides) {
      for (int s = 0; s < 3; ++s) {
        fast.step(dt);
        ref.step_reference(dt);
      }
      expect_fields_bit_identical(fast, ref);
    }
  }
}

TEST(ThermalKernel, StableAtStableStepUnderExtremeCooling) {
  // Harshest corner: strongest sink (high-end active), tiny sink mass, full
  // power.  Advancing at exactly stable_step() must stay bounded: explicit
  // Euler diverges visibly within a few hundred substeps if the bound is
  // wrong.
  Rng rng{0xc001'cafe};
  for (int trial = 0; trial < 6; ++trial) {
    StackSpec spec = random_spec(rng);
    spec.sink_r = ThermalResistance{0.05};
    spec.sink_heat_capacity = 0.002;
    StackModel model{spec};
    apply_random_power(model, rng);

    const double ambient_c = spec.ambient.value();
    for (int s = 0; s < 500; ++s) {
      model.step(model.stable_step());
      const double peak = model.peak_over_layers(0, model.layer_count() - 1).value();
      ASSERT_TRUE(std::isfinite(peak)) << "diverged at substep " << s;
      ASSERT_LT(peak, 500.0) << "diverged at substep " << s;
      ASSERT_GT(peak, ambient_c - 1.0);
    }
  }
}

TEST(ThermalKernel, WarmStartMatchesColdWithinToleranceAndCutsIterations) {
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;

  auto read_power = [&](double bw) {
    hmc::TransactionMix mix;
    mix.reads_per_sec = bw * 1e9 / 64.0;
    power::OperatingPoint op;
    op.link_raw = link.raw_link_bandwidth(mix);
    op.dram_internal = link.internal_dram_bandwidth(mix);
    return power::compute_power(ep, op);
  };

  HmcThermalModel cold{hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  HmcThermalModel warm{hmc20_thermal_config(power::CoolingType::kCommodityServer)};

  std::size_t cold_iters = 0;
  std::size_t warm_iters = 0;
  for (double bw = 0.0; bw <= 320.0 + 1e-9; bw += 40.0) {
    cold.apply_power(read_power(bw));
    warm.apply_power(read_power(bw));
    cold_iters += cold.solve_steady(SteadyStart::kCold);
    warm_iters += warm.solve_steady(SteadyStart::kWarmScaled);
    // Same fixed point within (a small multiple of) the solver tolerance.
    EXPECT_NEAR(warm.peak_dram().value(), cold.peak_dram().value(), 0.05);
    EXPECT_NEAR(warm.peak_logic().value(), cold.peak_logic().value(), 0.05);
    EXPECT_NEAR(warm.mean_dram().value(), cold.mean_dram().value(), 0.05);
  }
  // The tentpole claim: warm starts at least halve the sweep's iteration
  // count (measured: ~7x on this sweep, see BENCH_thermal.json).
  EXPECT_LE(warm_iters * 2, cold_iters);
}

TEST(ThermalKernel, StepIsAllocationFreeAndReferenceIsNot) {
  HmcThermalModel model{hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  const hmc::LinkModel link{hmc::hmc20_config()};
  hmc::TransactionMix mix;
  mix.reads_per_sec = 320.0 * 1e9 / 64.0;
  power::OperatingPoint op;
  op.link_raw = link.raw_link_bandwidth(mix);
  op.dram_internal = link.internal_dram_bandwidth(mix);
  model.apply_power(power::compute_power(power::EnergyParams{}, op));
  model.solve_steady();

  StackModel& stack = model.stack();
  // Touch the lazy stats cache once so its buffers exist.
  (void)model.peak_dram();

  const std::uint64_t before = allocations();
  for (int i = 0; i < 50; ++i) {
    stack.step(Time::us(10.0));
    (void)model.peak_dram();  // stats recompute must not allocate either
  }
  EXPECT_EQ(allocations(), before) << "step() allocated on the hot path";

  const std::uint64_t ref_before = allocations();
  stack.step_reference(Time::us(10.0));
  EXPECT_GT(allocations(), ref_before) << "reference kernel should use per-call scratch";
}

TEST(ThermalKernel, SteadyResolveIsAllocationFreeAfterHistoryWarmup) {
  HmcThermalModel model{hmc20_thermal_config(power::CoolingType::kCommodityServer)};
  const hmc::LinkModel link{hmc::hmc20_config()};
  const power::EnergyParams ep;
  auto apply_bw = [&](double bw) {
    hmc::TransactionMix mix;
    mix.reads_per_sec = bw * 1e9 / 64.0;
    power::OperatingPoint op;
    op.link_raw = link.raw_link_bandwidth(mix);
    op.dram_internal = link.internal_dram_bandwidth(mix);
    model.apply_power(power::compute_power(ep, op));
  };

  // Two solves populate both history slots; later solves recycle them.
  apply_bw(80.0);
  model.solve_steady(SteadyStart::kWarmScaled);
  apply_bw(160.0);
  model.solve_steady(SteadyStart::kWarmScaled);

  // apply_power legitimately builds fresh PowerMaps; the no-allocation
  // contract covers the solver itself.
  apply_bw(240.0);
  const std::uint64_t before = allocations();
  model.solve_steady(SteadyStart::kWarmScaled);
  EXPECT_EQ(allocations(), before) << "warm re-solve allocated";
}

}  // namespace
}  // namespace coolpim::thermal
