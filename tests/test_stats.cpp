// Tests for counters, summaries and histograms.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace coolpim {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.record(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.last(), 9.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(SummaryTest, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, WelfordMatchesNaiveOnRandomData) {
  Rng rng{123};
  Summary s;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double() * 100.0;
    xs.push_back(x);
    s.record(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.record(0.5);
  h.record(5.5);
  h.record(-3.0);   // clamps to first bucket
  h.record(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(HistogramTest, Percentile) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 49.0, 2.0);
  EXPECT_NEAR(h.percentile(0.99), 98.0, 2.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
}

TEST(HistogramTest, InvalidConfigThrows) {
  EXPECT_THROW((Histogram{5.0, 5.0, 10}), ConfigError);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), ConfigError);
}

TEST(StatSetTest, NamedAccessAndReset) {
  StatSet set;
  set.counter("reads").add(7);
  set.summary("latency").record(42.0);
  EXPECT_EQ(set.counter_value("reads"), 7u);
  EXPECT_EQ(set.counter_value("missing"), 0u);
  EXPECT_EQ(set.summaries().at("latency").count(), 1u);
  set.reset();
  EXPECT_EQ(set.counter_value("reads"), 0u);
  EXPECT_EQ(set.summaries().at("latency").count(), 0u);
}

// Property: percentiles are monotone in q for arbitrary data.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, Monotonic) {
  Rng rng{GetParam()};
  Histogram h{0.0, 1.0, 64};
  for (int i = 0; i < 1000; ++i) h.record(rng.next_double());
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1u, 2u, 3u, 42u, 999u));

}  // namespace
}  // namespace coolpim
