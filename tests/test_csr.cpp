// Tests for the CSR graph container.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <numeric>

#include "graph/csr.hpp"
#include "graph/generator.hpp"
#include "runner/pool.hpp"

namespace coolpim::graph {
namespace {

CsrGraph triangle() {
  return CsrGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}}, {10, 20, 30, 40});
}

TEST(CsrTest, BasicStructure) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_TRUE(g.has_weights());
}

TEST(CsrTest, NeighborsAndWeightsAligned) {
  const CsrGraph g = triangle();
  const auto nbrs = g.neighbors(0);
  const auto wts = g.edge_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  ASSERT_EQ(wts.size(), 2u);
  // Edges from 0 were (0,1,w10) and (0,2,w40), kept in insertion order.
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(wts[0], 10u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(wts[1], 40u);
}

TEST(CsrTest, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(5, {});
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0u);
  EXPECT_FALSE(g.has_weights());
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(CsrTest, SelfLoopsAndMultiEdgesKept) {
  const CsrGraph g = CsrGraph::from_edges(2, {{0, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 3u);
}

TEST(CsrTest, OutOfRangeEdgeThrows) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 5}}), ConfigError);
  EXPECT_THROW(CsrGraph::from_edges(2, {{7, 0}}), ConfigError);
}

TEST(CsrTest, WeightCountMismatchThrows) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 1}}, {1, 2}), ConfigError);
}

TEST(CsrTest, StructureBytesAccounting) {
  const CsrGraph g = triangle();
  const std::uint64_t expected = 4 * sizeof(EdgeId) +        // row_ptr (n+1)
                                 4 * sizeof(VertexId) +      // col_idx
                                 4 * sizeof(std::uint32_t);  // weights
  EXPECT_EQ(g.structure_bytes(), expected);
}

TEST(CsrTest, DegreeTableMatchesRowPtr) {
  const CsrGraph g = make_rmat(10, 8, 5);
  ASSERT_EQ(g.degrees().size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degrees()[v], g.out_degree(v));
  }
}

TEST(CsrTest, MaxDegreeVertexIsLowestIdArgmax) {
  // Ties break toward the lowest vertex id -- the same answer the original
  // linear hub scans produced.
  const CsrGraph g = CsrGraph::from_edges(4, {{2, 0}, {2, 1}, {3, 0}, {3, 1}, {0, 1}});
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.max_degree_vertex(), 2u);  // vertices 2 and 3 both have degree 2

  const CsrGraph empty = CsrGraph::from_edges(3, {});
  EXPECT_EQ(empty.max_degree_vertex(), 0u);

  const CsrGraph r = make_rmat(10, 8, 5);
  VertexId expect = 0;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < r.num_vertices(); ++v) {
    if (r.out_degree(v) > best) {
      best = r.out_degree(v);
      expect = v;
    }
  }
  EXPECT_EQ(r.max_degree_vertex(), expect);
}

TEST(CsrTest, ParallelBuildBitIdenticalToSerial) {
  // The chunked parallel counting sort must produce the same arrays as the
  // serial build at any jobs count, including edge-order-sensitive cases
  // (multi-edges and weights keep their insertion order per source).
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<std::uint32_t> weights;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    edges.emplace_back((i * 2654435761u) % 997, (i * 40503u) % 997);
    weights.push_back(i % 64 + 1);
  }
  const CsrGraph serial = CsrGraph::from_edges(997, edges, weights);
  for (const unsigned jobs : {1u, 3u, 8u}) {
    SCOPED_TRACE(jobs);
    runner::Pool pool{jobs};
    const CsrGraph parallel = CsrGraph::from_edges(997, edges, weights, &pool);
    EXPECT_EQ(parallel.row_ptr(), serial.row_ptr());
    EXPECT_EQ(parallel.col_idx(), serial.col_idx());
    ASSERT_TRUE(parallel.has_weights());
    for (VertexId v = 0; v < 997; ++v) {
      const auto a = parallel.edge_weights(v);
      const auto b = serial.edge_weights(v);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

// Property sweep: degree sums equal edge counts for all generators.
struct GenCase {
  const char* name;
  CsrGraph (*make)();
};

class DegreeSumProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(DegreeSumProperty, SumEqualsEdges) {
  const CsrGraph g = GetParam().make();
  std::uint64_t total = 0;
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    total += g.out_degree(v);
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(max_deg, g.max_degree());
  EXPECT_NEAR(g.mean_degree(),
              static_cast<double>(g.num_edges()) / g.num_vertices(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Generators, DegreeSumProperty,
    ::testing::Values(GenCase{"rmat", [] { return make_rmat(10, 8, 1); }},
                      GenCase{"uniform", [] { return make_uniform(500, 4000, 2); }},
                      GenCase{"grid", [] { return make_grid(16, 16); }},
                      GenCase{"ldbc", [] { return make_ldbc_like(9, 3); }}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace coolpim::graph
