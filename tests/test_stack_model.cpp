// Tests for the compact 3D-stack thermal solver.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "thermal/stack_model.hpp"

namespace coolpim::thermal {
namespace {

StackSpec small_spec() {
  StackSpec spec;
  spec.floorplan.grid = GridDims{16, 8};
  spec.floorplan.vaults_x = 4;
  spec.floorplan.vaults_y = 2;
  spec.layers.resize(3);
  spec.layers[0].name = "logic";
  spec.layers[1].name = "dram0";
  spec.layers[2].name = "dram1";
  // Small sink mass so transient tests converge quickly (the HMC-level model
  // uses a boundary-condition sink for the same reason).
  spec.sink_heat_capacity = 0.05;
  return spec;
}

TEST(StackModelTest, StartsAtAmbient) {
  StackModel model{small_spec()};
  for (std::size_t l = 0; l < model.layer_count(); ++l) {
    EXPECT_NEAR(model.layer_peak(l).value(), 25.0, 1e-9);
  }
  EXPECT_NEAR(model.sink_temp().value(), 25.0, 1e-9);
}

TEST(StackModelTest, SteadyStateAboveAmbientWithPower) {
  StackModel model{small_spec()};
  model.set_layer_power(0, uniform_power(model.spec().floorplan, 20.0));
  model.solve_steady();
  EXPECT_GT(model.layer_peak(0).value(), 30.0);
  EXPECT_GT(model.sink_temp().value(), 25.0);
}

TEST(StackModelTest, PowerSourceLayerIsHottest) {
  StackModel model{small_spec()};
  model.set_layer_power(0, uniform_power(model.spec().floorplan, 20.0));
  model.solve_steady();
  // Heat flows bottom (logic) -> top (sink): monotone decreasing temps.
  EXPECT_GT(model.layer_mean(0).value(), model.layer_mean(1).value());
  EXPECT_GT(model.layer_mean(1).value(), model.layer_mean(2).value());
  EXPECT_GT(model.layer_mean(2).value(), model.sink_temp().value());
}

TEST(StackModelTest, ApproximateLinearityInPower) {
  StackModel model{small_spec()};
  const auto fp = model.spec().floorplan;
  model.set_layer_power(0, uniform_power(fp, 10.0));
  model.solve_steady();
  const double rise1 = model.layer_peak(0).value() - 25.0;
  model.set_layer_power(0, uniform_power(fp, 20.0));
  model.solve_steady();
  const double rise2 = model.layer_peak(0).value() - 25.0;
  EXPECT_NEAR(rise2, 2.0 * rise1, 0.02 * rise2);
}

TEST(StackModelTest, TransientConvergesToSteady) {
  StackModel a{small_spec()};
  StackModel b{small_spec()};
  const PowerMap p = uniform_power(a.spec().floorplan, 15.0);
  a.set_layer_power(0, p);
  a.solve_steady();
  b.set_layer_power(0, p);
  for (int i = 0; i < 20000; ++i) b.step(Time::us(50));
  EXPECT_NEAR(b.layer_peak(0).value(), a.layer_peak(0).value(), 0.3);
  EXPECT_NEAR(b.sink_temp().value(), a.sink_temp().value(), 0.3);
}

TEST(StackModelTest, ConcentratedPowerMakesHotterPeak) {
  StackModel uniform_model{small_spec()};
  StackModel hotspot_model{small_spec()};
  const auto fp = uniform_model.spec().floorplan;
  uniform_model.set_layer_power(0, uniform_power(fp, 20.0));
  hotspot_model.set_layer_power(0, vault_centered_power(fp, 20.0, 1));
  uniform_model.solve_steady();
  hotspot_model.solve_steady();
  EXPECT_GT(hotspot_model.layer_peak(0).value(), uniform_model.layer_peak(0).value());
}

TEST(StackModelTest, BetterSinkMeansCooler) {
  StackSpec spec = small_spec();
  spec.sink_r = ThermalResistance{4.0};
  StackModel passive{spec};
  spec.sink_r = ThermalResistance{0.2};
  StackModel highend{spec};
  const PowerMap p = uniform_power(spec.floorplan, 16.0);
  passive.set_layer_power(0, p);
  highend.set_layer_power(0, p);
  passive.solve_steady();
  highend.solve_steady();
  EXPECT_GT(passive.layer_peak(0).value(), highend.layer_peak(0).value() + 20.0);
}

TEST(StackModelTest, CoHeaterWarmsTheSink) {
  StackSpec spec = small_spec();
  StackModel without{spec};
  spec.co_heater_watts = 20.0;
  StackModel with{spec};
  without.solve_steady();
  with.solve_steady();
  EXPECT_GT(with.sink_temp().value(), without.sink_temp().value() + 5.0);
  EXPECT_GT(with.layer_peak(0).value(), without.layer_peak(0).value() + 5.0);
}

TEST(StackModelTest, ResetRestoresAmbient) {
  StackModel model{small_spec()};
  model.set_layer_power(0, uniform_power(model.spec().floorplan, 20.0));
  model.solve_steady();
  model.reset_to_ambient();
  EXPECT_NEAR(model.layer_peak(0).value(), 25.0, 1e-9);
}

TEST(StackModelTest, SurfaceBetweenTopDieAndSink) {
  StackModel model{small_spec()};
  model.set_layer_power(0, uniform_power(model.spec().floorplan, 20.0));
  model.solve_steady();
  const double top = model.layer_mean(model.layer_count() - 1).value();
  const double sink = model.sink_temp().value();
  const double surface = model.surface_temp().value();
  EXPECT_LE(surface, top + 1e-9);
  EXPECT_GE(surface, sink - 1e-9);
}

TEST(StackModelTest, LayerFieldShape) {
  StackModel model{small_spec()};
  const auto field = model.layer_field(0);
  EXPECT_EQ(field.size(), model.cells_per_layer());
}

TEST(StackModelTest, InvalidSpecsThrow) {
  StackSpec spec = small_spec();
  spec.layers.clear();
  EXPECT_THROW(StackModel{spec}, ConfigError);
  spec = small_spec();
  spec.sink_r = ThermalResistance{0.0};
  EXPECT_THROW(StackModel{spec}, ConfigError);
  spec = small_spec();
  spec.layers[0].thickness_m = -1.0;
  EXPECT_THROW(StackModel{spec}, ConfigError);
}

TEST(StackModelTest, StableStepPositive) {
  StackModel model{small_spec()};
  EXPECT_GT(model.stable_step(), Time::zero());
  EXPECT_THROW(model.step(Time::zero()), ConfigError);
}

}  // namespace
}  // namespace coolpim::thermal
