// Tests for the open-page row-buffer policy and address interleaving options.
#include <gtest/gtest.h>

#include "hmc/bank.hpp"
#include "hmc/device.hpp"

namespace coolpim::hmc {
namespace {

TEST(OpenPageTest, RowHitSkipsActivation) {
  Bank bank{DramTiming{}, Time::ns(2.0), PagePolicy::kOpenPage};
  const auto first = bank.schedule(Time::zero(), AccessKind::kRead, 1.0, /*row=*/7);
  // First access pays ACT + CAS.
  EXPECT_NEAR((first.complete - first.start).as_ns(), 27.5, 0.01);
  const auto hit = bank.schedule(first.bank_free, AccessKind::kRead, 1.0, 7);
  // Row hit: CAS only.
  EXPECT_NEAR((hit.complete - hit.start).as_ns(), 13.75, 0.01);
  EXPECT_EQ(bank.row_hits(), 1u);
  EXPECT_EQ(bank.row_conflicts(), 0u);
}

TEST(OpenPageTest, RowConflictPaysPrechargePlusActivate) {
  Bank bank{DramTiming{}, Time::ns(2.0), PagePolicy::kOpenPage};
  (void)bank.schedule(Time::zero(), AccessKind::kRead, 1.0, 1);
  const auto conflict = bank.schedule(Time::us(1), AccessKind::kRead, 1.0, 2);
  // tRP + tRCD + tCL.
  EXPECT_NEAR((conflict.complete - conflict.start).as_ns(), 13.75 * 3, 0.01);
  EXPECT_EQ(bank.row_conflicts(), 1u);
}

TEST(OpenPageTest, StreamingThroughputBeatsClosedPage) {
  // Back-to-back accesses to the same row: open page releases the bank after
  // the burst; closed page holds it for the full row cycle.
  Bank open_bank{DramTiming{}, Time::ns(2.0), PagePolicy::kOpenPage};
  Bank closed_bank{DramTiming{}, Time::ns(2.0), PagePolicy::kClosedPage};
  Time open_done, closed_done;
  for (int i = 0; i < 64; ++i) {
    open_done = open_bank.schedule(Time::zero(), AccessKind::kRead, 1.0, 0).bank_free;
    closed_done = closed_bank.schedule(Time::zero(), AccessKind::kRead, 1.0, 0).bank_free;
  }
  EXPECT_LT(open_done.as_ns(), 0.5 * closed_done.as_ns());
}

TEST(OpenPageTest, RandomRowsSlowerThanClosedPage) {
  // Every access conflicts: open page pays tRP + tRCD + tCL serially, which
  // is worse than the closed-page pipeline-friendly row cycle.
  Bank open_bank{DramTiming{}, Time::ns(2.0), PagePolicy::kOpenPage};
  Time open_done;
  for (int i = 0; i < 64; ++i) {
    open_done =
        open_bank.schedule(Time::zero(), AccessKind::kRead, 1.0, static_cast<std::uint64_t>(i))
            .bank_free;
  }
  EXPECT_EQ(open_bank.row_conflicts(), 63u);
  EXPECT_EQ(open_bank.row_hits(), 0u);
  EXPECT_GT(open_done.as_ns(), 63 * 2 * 13.75);
}

TEST(AddressMapTest, RowExtraction) {
  const AddressMap map{32, 16, 64, 2048};
  // Two addresses within the same vault/bank stride but different row groups.
  const auto a = map.locate(0);
  const auto b = map.locate(64ull * 32 * 16);  // next block in the same bank
  EXPECT_EQ(a.vault, b.vault);
  EXPECT_EQ(a.bank, b.bank);
  // 64 bytes per bank-visit; 2048-byte rows hold 32 of them.
  const auto far = map.locate(64ull * 32 * 16 * 40);
  EXPECT_NE(a.row, far.row);
}

TEST(AddressMapTest, CoarseInterleavingKeepsStreamsLocal) {
  const AddressMap fine{32, 16, 64, 2048};
  const AddressMap coarse{32, 16, 4096, 2048};
  // A 4 KB stream: fine interleaving touches many vaults, coarse stays in one.
  std::size_t fine_vaults = 0, coarse_vaults = 0;
  std::size_t prev_f = SIZE_MAX, prev_c = SIZE_MAX;
  for (std::uint64_t addr = 0; addr < 4096; addr += 64) {
    const auto f = fine.locate(addr);
    const auto c = coarse.locate(addr);
    if (f.vault != prev_f) {
      ++fine_vaults;
      prev_f = f.vault;
    }
    if (c.vault != prev_c) {
      ++coarse_vaults;
      prev_c = c.vault;
    }
  }
  EXPECT_GT(fine_vaults, 30u);
  EXPECT_EQ(coarse_vaults, 1u);
}

TEST(OpenPageDeviceTest, ConfigFlagReachesBanks) {
  sim::Simulation sim;
  HmcConfig cfg = hmc20_config();
  cfg.open_page = true;
  Device dev{sim, cfg};
  // Sequential reads within one row of one bank: row hits shorten latency
  // relative to the closed-page device.
  auto run = [](bool open_page) {
    sim::Simulation s;
    HmcConfig c = hmc20_config();
    c.open_page = open_page;
    Device d{s, c};
    Time done;
    for (int i = 0; i < 32; ++i) {
      // Same vault+bank (stride = vaults*banks*64), same 2 KB row region.
      d.submit({TransactionType::kRead64, static_cast<std::uint64_t>(i) * 64ull * 32 * 16, 0},
               [&](const Response&) { done = s.now(); });
    }
    s.run_to_completion();
    return done;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace coolpim::hmc
