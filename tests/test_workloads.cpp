// Tests for the instrumented graph workloads: functional correctness against
// independent reference implementations plus instrumentation invariants.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "graph/generator.hpp"
#include "graph/reference.hpp"
#include "graph/workloads.hpp"

namespace coolpim::graph {
namespace {

class WorkloadFixture : public ::testing::Test {
 protected:
  static const CsrGraph& graph() {
    static const CsrGraph g = make_ldbc_like(12, 5);
    return g;
  }
  static VertexId hub() { return graph().max_degree_vertex(); }
};

// --- Functional correctness ------------------------------------------------

TEST_F(WorkloadFixture, AllBfsVariantsComputeIdenticalLevels) {
  const auto ref = reference::bfs_levels(graph(), hub());
  const auto ref_sum = checksum_vector(ref);
  for (const auto v : {BfsVariant::kTopologyAtomic, BfsVariant::kTopologyThreadCentric,
                       BfsVariant::kTopologyWarpCentric, BfsVariant::kDataWarpCentric}) {
    const auto profile = run_bfs(graph(), hub(), v);
    EXPECT_EQ(profile.result_checksum, ref_sum) << profile.name;
  }
}

TEST_F(WorkloadFixture, SsspMatchesDijkstra) {
  const auto ref = reference::sssp_distances(graph(), hub());
  const auto ref_sum = checksum_vector(ref);
  for (const auto v : {SsspVariant::kDataThreadCentric, SsspVariant::kDataWarpCentric,
                       SsspVariant::kTopologyWarpCentric}) {
    const auto profile = run_sssp(graph(), hub(), v);
    EXPECT_EQ(profile.result_checksum, ref_sum) << profile.name;
  }
}

TEST_F(WorkloadFixture, DegreeCentralityMatchesReference) {
  const auto ref = reference::in_degrees(graph());
  EXPECT_EQ(run_degree_centrality(graph()).result_checksum, checksum_vector(ref));
}

TEST_F(WorkloadFixture, KcoreMatchesReference) {
  const auto ref = reference::kcore_removed(graph(), 16);
  EXPECT_EQ(run_kcore(graph(), 16).result_checksum, checksum_vector(ref));
}

TEST_F(WorkloadFixture, PagerankMatchesReference) {
  const auto ref = reference::pagerank_scores(graph(), 10);
  std::vector<std::uint64_t> quantized(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    quantized[i] = static_cast<std::uint64_t>(std::llround(ref[i] * 1e9));
  }
  EXPECT_EQ(run_pagerank(graph(), 10).result_checksum, checksum_vector(quantized));
}

// --- Instrumentation invariants ---------------------------------------------

TEST_F(WorkloadFixture, BfsProcessesEveryReachableEdgeOnce) {
  const auto profile = run_bfs(graph(), hub(), BfsVariant::kDataWarpCentric);
  // Each reachable vertex's out-edges are traversed exactly once.
  const auto levels = reference::bfs_levels(graph(), hub());
  std::uint64_t reachable_edges = 0;
  for (VertexId v = 0; v < graph().num_vertices(); ++v) {
    if (levels[v] != kUnreached) reachable_edges += graph().out_degree(v);
  }
  EXPECT_EQ(profile.total_edges(), reachable_edges);
}

TEST_F(WorkloadFixture, BfsAtomicPerEdgePlusQueueOps) {
  const auto dwc = run_bfs(graph(), hub(), BfsVariant::kDataWarpCentric);
  // Unconditional atomicMin per edge plus one enqueue atomic per discovery.
  EXPECT_GE(dwc.total_atomics(), dwc.total_edges());
  EXPECT_LE(dwc.total_atomics(), dwc.total_edges() + graph().num_vertices());
}

TEST_F(WorkloadFixture, PagerankAtomicsPerEdgePerIteration) {
  const auto pr = run_pagerank(graph(), 4);
  EXPECT_EQ(pr.iterations.size(), 4u);
  for (const auto& it : pr.iterations) {
    EXPECT_EQ(it.atomic_ops, it.edges_processed);
  }
}

TEST_F(WorkloadFixture, DivergenceRatiosOrdered) {
  // Thread-centric topology kernels diverge heavily on power-law graphs;
  // warp-centric ones stay near zero (paper Section IV-B).
  const auto tc = run_bfs(graph(), hub(), BfsVariant::kTopologyThreadCentric);
  const auto wc = run_bfs(graph(), hub(), BfsVariant::kTopologyWarpCentric);
  EXPECT_GT(tc.divergence_ratio(), 0.5);
  EXPECT_LT(wc.divergence_ratio(), 0.1);
}

TEST_F(WorkloadFixture, DivergenceInUnitInterval) {
  for (const auto& profile :
       {run_degree_centrality(graph()), run_kcore(graph()), run_pagerank(graph(), 2)}) {
    for (const auto& it : profile.iterations) {
      EXPECT_GE(it.divergent_warp_ratio, 0.0);
      EXPECT_LE(it.divergent_warp_ratio, 1.0);
    }
  }
}

TEST_F(WorkloadFixture, TopologyVariantsScanAllVertices) {
  const auto ta = run_bfs(graph(), hub(), BfsVariant::kTopologyAtomic);
  for (const auto& it : ta.iterations) {
    EXPECT_EQ(it.scanned_vertices, graph().num_vertices());
  }
  const auto dwc = run_bfs(graph(), hub(), BfsVariant::kDataWarpCentric);
  std::uint64_t scanned = 0;
  for (const auto& it : dwc.iterations) scanned += it.scanned_vertices;
  EXPECT_LT(scanned, static_cast<std::uint64_t>(graph().num_vertices()) *
                         dwc.iterations.size());
}

TEST_F(WorkloadFixture, AtomicFrontierAddsAtomicsToTa) {
  const auto ta = run_bfs(graph(), hub(), BfsVariant::kTopologyAtomic);
  const auto ttc = run_bfs(graph(), hub(), BfsVariant::kTopologyThreadCentric);
  EXPECT_GT(ta.total_atomics(), ttc.total_atomics());
}

TEST_F(WorkloadFixture, KcoreHasLowSustainedAtomicIntensity) {
  const auto kc = run_kcore(graph());
  // Atomics only on peeled edges: far fewer than total edge visits would be.
  EXPECT_LT(kc.total_atomics(), graph().num_edges());
}

TEST_F(WorkloadFixture, WorkThreadsMatchParallelism) {
  const auto tc = run_bfs(graph(), hub(), BfsVariant::kTopologyThreadCentric);
  EXPECT_EQ(tc.iterations.front().work_threads, graph().num_vertices());
  const auto wc = run_bfs(graph(), hub(), BfsVariant::kTopologyWarpCentric);
  EXPECT_EQ(wc.iterations.front().work_threads,
            static_cast<std::uint64_t>(graph().num_vertices()) * 32);
}

TEST_F(WorkloadFixture, GraphMetadataPopulated) {
  for (const auto& profile : {run_degree_centrality(graph()), run_kcore(graph())}) {
    EXPECT_EQ(profile.graph_vertices, graph().num_vertices());
    EXPECT_EQ(profile.graph_edges, graph().num_edges());
  }
}

TEST_F(WorkloadFixture, PimIntensityPositiveForAtomicWorkloads) {
  EXPECT_GT(run_degree_centrality(graph()).pim_intensity(), 0.0);
  EXPECT_GT(run_pagerank(graph(), 2).pim_intensity(), 0.0);
}

TEST(WorkloadEdgeCases, BfsFromIsolatedVertex) {
  const CsrGraph g = CsrGraph::from_edges(4, {{1, 2}, {2, 3}}, {1, 1});
  const auto profile = run_bfs(g, 0, BfsVariant::kDataWarpCentric);
  EXPECT_EQ(profile.total_edges(), 0u);
  EXPECT_EQ(profile.result_checksum,
            checksum_vector(reference::bfs_levels(g, 0)));
}

TEST(WorkloadEdgeCases, SsspRequiresWeights) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(run_sssp(g, 0, SsspVariant::kDataWarpCentric), ConfigError);
}

TEST(WorkloadEdgeCases, SourceOutOfRangeThrows) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}}, {1});
  EXPECT_THROW(run_bfs(g, 7, BfsVariant::kTopologyAtomic), ConfigError);
  EXPECT_THROW(run_sssp(g, 7, SsspVariant::kDataWarpCentric), ConfigError);
}

TEST(WorkloadEdgeCases, KcoreFullyPeelsSparseGraph) {
  // Every vertex has degree < k: all removed after one peel round.
  const CsrGraph g = make_grid(8, 8);  // degree 8 undirected-ized
  const auto profile = run_kcore(g, 100);
  const auto ref = reference::kcore_removed(g, 100);
  EXPECT_EQ(profile.result_checksum, checksum_vector(ref));
  EXPECT_TRUE(std::all_of(ref.begin(), ref.end(), [](auto r) { return r == 1; }));
}

// Checksum helper sanity.
TEST(ChecksumTest, SensitiveToContent) {
  std::vector<std::uint32_t> a{1, 2, 3}, b{1, 2, 4};
  EXPECT_NE(checksum_vector(a), checksum_vector(b));
  EXPECT_EQ(checksum_vector(a), checksum_vector(a));
}

}  // namespace
}  // namespace coolpim::graph
