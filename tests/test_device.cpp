// Tests for the event-detailed HMC device model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <vector>

#include "hmc/device.hpp"

namespace coolpim::hmc {
namespace {

class DeviceFixture : public ::testing::Test {
 protected:
  sim::Simulation sim_;
};

TEST_F(DeviceFixture, SingleReadLatency) {
  Device dev{sim_, hmc20_config()};
  bool done = false;
  Time completion;
  dev.submit({TransactionType::kRead64, 0x1000, 1}, [&](const Response& r) {
    done = true;
    completion = sim_.now();
    EXPECT_EQ(r.tag, 1u);
    EXPECT_EQ(r.errstat, ErrStat::kOk);
  });
  sim_.run_to_completion();
  ASSERT_TRUE(done);
  // Link + crossbar + ACT + CAS + response: tens of nanoseconds.
  EXPECT_GT(completion.as_ns(), 27.5);
  EXPECT_LT(completion.as_ns(), 100.0);
}

TEST_F(DeviceFixture, AddressMapSpreadsBlocksAcrossVaults) {
  const AddressMap map{32, 16};
  const auto a = map.locate(0);
  const auto b = map.locate(64);
  EXPECT_NE(a.vault, b.vault);
  // Wrapping after all vaults moves to the next bank.
  const auto c = map.locate(64ull * 32);
  EXPECT_EQ(c.vault, a.vault);
  EXPECT_NE(c.bank, a.bank);
}

TEST_F(DeviceFixture, SaturatedReadBandwidthIsResponsePipeBound) {
  // Pure reads saturate the outbound pipe: 240 GB/s raw carrying 64 payload
  // bytes per 5-FLIT (80-byte) response = 192 GB/s.
  Device dev{sim_, hmc20_config()};
  constexpr int kReads = 20000;
  int completed = 0;
  Time last;
  for (int i = 0; i < kReads; ++i) {
    dev.submit({TransactionType::kRead64, static_cast<std::uint64_t>(i) * 64, 0},
               [&](const Response&) {
                 ++completed;
                 last = sim_.now();
               });
  }
  sim_.run_to_completion();
  ASSERT_EQ(completed, kReads);
  const double gbps = static_cast<double>(kReads) * 64.0 / last.as_sec() * 1e-9;
  EXPECT_GT(gbps, 0.85 * 192.0);
  EXPECT_LT(gbps, 1.02 * 192.0);
}

TEST_F(DeviceFixture, BalancedMixReachesPeakDataBandwidth) {
  // A balanced read/write mix uses both directions and reaches the paper's
  // 320 GB/s maximum data bandwidth.
  Device dev{sim_, hmc20_config()};
  constexpr int kPairs = 10000;
  Time last;
  for (int i = 0; i < kPairs; ++i) {
    const auto addr = static_cast<std::uint64_t>(i) * 64;
    dev.submit({TransactionType::kRead64, addr, 0}, [&](const Response&) { last = sim_.now(); });
    dev.submit({TransactionType::kWrite64, addr + 64 * 1024, 0},
               [&](const Response&) { last = sim_.now(); });
  }
  sim_.run_to_completion();
  const double gbps = static_cast<double>(kPairs) * 128.0 / last.as_sec() * 1e-9;
  EXPECT_GT(gbps, 0.85 * 320.0);
  EXPECT_LT(gbps, 1.02 * 320.0);
}

TEST_F(DeviceFixture, PimThroughputBeatsReadWritePairs) {
  // The same number of updates moves fewer FLITs as PIM ops, so the PIM run
  // finishes sooner than read+write pairs (the paper's bandwidth argument).
  constexpr int kOps = 4000;
  Time pim_done, rw_done;
  {
    sim::Simulation sim;
    Device dev{sim, hmc20_config()};
    for (int i = 0; i < kOps; ++i) {
      dev.submit({TransactionType::kPimNoReturn, static_cast<std::uint64_t>(i) * 64, 0},
                 [&](const Response&) { pim_done = sim.now(); });
    }
    sim.run_to_completion();
  }
  {
    sim::Simulation sim;
    Device dev{sim, hmc20_config()};
    for (int i = 0; i < kOps; ++i) {
      const auto addr = static_cast<std::uint64_t>(i) * 64;
      dev.submit({TransactionType::kRead64, addr, 0}, [](const Response&) {});
      dev.submit({TransactionType::kWrite64, addr, 0},
                 [&](const Response&) { rw_done = sim.now(); });
    }
    sim.run_to_completion();
  }
  EXPECT_LT(pim_done, rw_done);
}

TEST_F(DeviceFixture, ThermalWarningSetInResponses) {
  Device dev{sim_, hmc20_config()};
  dev.set_dram_temperature(Celsius{86.0});
  EXPECT_TRUE(dev.warning_active());
  bool saw_warning = false;
  dev.submit({TransactionType::kRead64, 0, 0}, [&](const Response& r) {
    saw_warning = r.errstat == ErrStat::kThermalWarning;
  });
  sim_.run_to_completion();
  EXPECT_TRUE(saw_warning);
  EXPECT_EQ(dev.stats().counter_value("thermal_warnings"), 1u);
}

TEST_F(DeviceFixture, DeratedServiceIsSlower) {
  Time cool_done, hot_done;
  for (const double temp : {60.0, 90.0}) {
    sim::Simulation sim;
    Device dev{sim, hmc20_config()};
    dev.set_dram_temperature(Celsius{temp});
    Time done;
    for (int i = 0; i < 200; ++i) {
      dev.submit({TransactionType::kRead64, static_cast<std::uint64_t>(i) * 64 * 32, 0},
                 [&](const Response&) { done = sim.now(); });
    }
    sim.run_to_completion();
    (temp < 85.0 ? cool_done : hot_done) = done;
  }
  EXPECT_LT(cool_done, hot_done);
}

TEST_F(DeviceFixture, ShutdownRejectsRequests) {
  Device dev{sim_, hmc20_config()};
  dev.set_dram_temperature(Celsius{106.0});
  EXPECT_TRUE(dev.is_shut_down());
  EXPECT_THROW(dev.submit({TransactionType::kRead64, 0, 0}, [](const Response&) {}),
               SimError);
}

TEST_F(DeviceFixture, Hmc11RejectsPim) {
  Device dev{sim_, hmc11_config()};
  EXPECT_THROW(dev.submit({TransactionType::kPimNoReturn, 0, 0}, [](const Response&) {}),
               ConfigError);
}

TEST_F(DeviceFixture, StatsAndFlitAccounting) {
  Device dev{sim_, hmc20_config()};
  dev.submit({TransactionType::kRead64, 0, 0}, [](const Response&) {});
  dev.submit({TransactionType::kPimWithReturn, 64, 0}, [](const Response&) {});
  sim_.run_to_completion();
  EXPECT_EQ(dev.stats().counter_value("requests"), 2u);
  EXPECT_EQ(dev.total_flits(), 6u + 4u);
  EXPECT_EQ(dev.total_payload_bytes(), 64u + 16u);
}

}  // namespace
}  // namespace coolpim::hmc
